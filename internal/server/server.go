// Package server exposes the DoMD framework as an HTTP back end — the role
// the paper describes for the deployed system ("a back-end engine for a
// fleet-readiness application within the Navy's SMDII"). It wraps a trained
// core.Pipeline and a statusq.Catalog behind a small JSON API:
//
//	GET  /healthz                          liveness probe (process is up)
//	GET  /readyz                           readiness probe (catalog restored,
//	                                       WAL open — safe to send ingests)
//	GET  /avails                           list avails (id, status, dates)
//	GET  /query?avail=ID&date=2024-04-12   DoMD query (Problem 1)
//	GET  /fleet?date=2024-04-12            DoMD for every ongoing avail
//	POST /query/batch                      many DoMD queries in one request
//	                                       (one engine lookup per avail)
//	GET  /predict?avail=ID&date=...        predicted delay + conformal band
//	                                       + model version (Options.Models)
//	POST /predict                          many predictions in one request
//	GET  /models                           model registry listing
//	POST /models/reload                    hot-swap the model registry
//	POST /rccs                             ingest one RCC (contract change)
//	GET  /metrics                          Prometheus text-format metrics
//
// The canonical endpoint table is Endpoints (obs.go); New registers the
// mux from it, `domd serve -h` prints it, and docs/OPERATIONS.md is
// cross-checked against it, so the three surfaces cannot drift.
//
// # Predictions
//
// When Options.Models wires a modelserve.Registry, /predict serves the
// paper's end product — a predicted days-of-maintenance-delay per ongoing
// avail with a split-conformal band — and every /fleet row is annotated
// with predicted_delay, band_lo/band_hi, and model_version. Prediction
// failures follow the same degraded-answer contract as stale serving: a
// missing registry, an empty one, or a model error annotates the row
// prediction_unavailable rather than failing the read.
//
// # Ingestion
//
// POST /rccs takes a JSON body {"id", "avail_id", "type" ("G"|"NW"|"NG"),
// "swlin" ("434-11-001" or 8 digits), "created", "settled" (ISO dates),
// "amount"} and acknowledges with 201 only after the record is applied —
// durably logged first, when the handler is wired to a
// statusq.DurableCatalog. Malformed bodies are 400, semantically invalid
// fields 422, an unknown avail 404, an oversized body 413, and a storage
// fault 503 with Retry-After (the record is NOT acknowledged; retry with
// the same Idempotency-Key). The optional Idempotency-Key header dedups
// retries (default key: "rcc:<id>"); a replayed duplicate answers 200
// with "duplicate": true instead of 201.
//
// # Degraded answers
//
// Every /query response and /fleet row carries "stale" and "asOf": asOf
// is the revision of the answering engine, counted as the number of RCCs
// of that avail folded into it, and "stale": true marks an answer served
// from the last good engine because the current rebuild failed (or an
// ingest landed mid-query). Clients that must not act on degraded data
// check "stale"; everyone else gets availability instead of a 5xx.
//
// # Middleware and observability
//
// Every request passes a stack applied in ServeHTTP: panic recovery
// (500 + stack log; the process keeps serving), a per-request deadline
// (Options.RequestTimeout), and a concurrency limiter that sheds load
// with 503 + Retry-After once Options.MaxInFlight requests are in
// flight. /healthz, /readyz, and /metrics bypass shedding so probes and
// scrapes stay accurate under overload. The handler is safe for
// concurrent use: queries are answered from the catalog's cached
// per-avail engines (single-flight built), and /fleet fans out with
// bounded parallelism, per-avail error isolation, and request-context
// propagation.
//
// The same stack instruments every request: per-route request counters
// and latency histograms, an in-flight gauge, and shed/panic counters in
// the obs.Default registry (served back out on GET /metrics), plus one
// obs.Span per request — carried in the request context, annotated by
// handlers with the engine's asOf/stale markers and ingest outcomes, and
// emitted through Options.Logger as a single structured trace line. The
// metric catalog and trace-line grammar are documented in
// docs/OPERATIONS.md.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"domd/internal/core"
	"domd/internal/domain"
	"domd/internal/features"
	"domd/internal/index"
	"domd/internal/modelserve"
	"domd/internal/obs"
	"domd/internal/statusq"
	"domd/internal/swlin"
)

// DefaultFleetParallelism bounds the /fleet fan-out when Options leaves it
// unset: wide enough to hide per-avail latency, narrow enough that one
// fleet request cannot monopolize the process.
const DefaultFleetParallelism = 8

// DefaultMaxInFlight is the concurrency-limiter capacity when Options
// leaves it unset.
const DefaultMaxInFlight = 256

// DefaultRequestTimeout bounds one request's handling when Options
// leaves it unset.
const DefaultRequestTimeout = 30 * time.Second

// DefaultMaxBodyBytes caps POST bodies when Options leaves it unset;
// one RCC is a few hundred bytes, so 1 MiB is already generous.
const DefaultMaxBodyBytes = 1 << 20

// Ingester is the write path the /rccs endpoint acknowledges through.
// statusq.DurableCatalog implements it with WAL-before-ack semantics;
// the in-memory fallback (memIngester) implements it without
// durability for catalogs served without a WAL.
type Ingester interface {
	// Ingest applies one RCC, deduplicating by key; see
	// statusq.DurableCatalog.Ingest for the acknowledgment contract.
	Ingest(key string, r domain.RCC) (dup bool, err error)
	// Ready reports whether ingestion can currently be acknowledged.
	Ready() error
}

// Options tune the handler.
type Options struct {
	// FleetParallelism caps the number of avails queried concurrently by
	// one /fleet request; <= 0 selects DefaultFleetParallelism.
	FleetParallelism int
	// MaxInFlight caps concurrently handled requests; excess load is
	// shed with 503 + Retry-After. 0 selects DefaultMaxInFlight,
	// negative disables shedding.
	MaxInFlight int
	// RequestTimeout is the per-request deadline propagated through the
	// request context. 0 selects DefaultRequestTimeout, negative
	// disables the deadline.
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies (413 beyond it). 0 selects
	// DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// Ingester handles POST /rccs and gates /readyz. nil serves
	// ingestion non-durably straight into the catalog (tests,
	// exploratory runs); wire a statusq.DurableCatalog for WAL-backed
	// acknowledgments.
	Ingester Ingester
	// Logger receives one line per request (method, path, status,
	// duration) plus panic and write-failure reports. nil disables
	// request logging.
	Logger *log.Logger
	// Models serves /predict and annotates /fleet rows with predictions.
	// nil serves without a model registry: those answers carry
	// prediction_unavailable and /models/reload answers 503.
	Models *modelserve.Registry
	// PredictAlpha is the conformal miscoverage level served when a
	// request does not pass ?alpha=; <= 0 defers to the active model
	// version's default (modelserve.DefaultAlpha when none is loaded).
	PredictAlpha float64
}

// Catalog is the queryable serving surface the handlers read from. Both
// *statusq.Catalog (one engine cache, one lock) and *statusq.ShardedCatalog
// (N shards keyed by avail id, point lookups routed to the owning shard,
// fleet sweeps merged across shards in ascending id order) satisfy it, so
// the handler call sites are identical under either topology.
type Catalog interface {
	// Kind reports the TimeIndex design engines are built with.
	Kind() index.Kind
	// Avail resolves one avail record by id.
	Avail(id int) (*domain.Avail, bool)
	// AvailIDs lists every avail id in ascending order.
	AvailIDs() []int
	// OngoingIDs lists ongoing avail ids in ascending order — the
	// deterministic sweep /fleet renders.
	OngoingIDs() []int
	// EngineAsOf resolves an avail's serving engine with stale/asOf
	// provenance (see statusq.Catalog.EngineAsOf).
	EngineAsOf(id int) (eng *statusq.Engine, asOf int64, stale bool, err error)
}

// Server handles the SMDII-style JSON API.
type Server struct {
	svc      *core.QueryService
	catalog  Catalog
	ingester Ingester
	mux      *http.ServeMux
	fleetPar int
	inflight chan struct{} // nil when shedding is disabled
	timeout  time.Duration // 0 when the deadline is disabled
	maxBody  int64
	logger   *log.Logger
	models   *modelserve.Registry // nil when serving without models
	alpha    float64              // default conformal miscoverage level
	// latEWMA is math.Float64bits of an exponentially weighted moving
	// average of request latency in seconds; Retry-After on 503s is
	// derived from it (see retryAfterSeconds).
	latEWMA atomic.Uint64
}

// New wires a trained pipeline and an avail catalog into an http.Handler.
// Queries hit the catalog's engine cache; the catalog's index kind decides
// the Status Query backend.
func New(p *core.Pipeline, ext *features.Extractor, catalog Catalog, opts Options) *Server {
	par := opts.FleetParallelism
	if par <= 0 {
		par = DefaultFleetParallelism
	}
	s := &Server{
		svc:      core.NewQueryService(p, ext, catalog.Kind()),
		catalog:  catalog,
		ingester: opts.Ingester,
		mux:      http.NewServeMux(),
		fleetPar: par,
		maxBody:  opts.MaxBodyBytes,
		logger:   opts.Logger,
		models:   opts.Models,
		alpha:    opts.PredictAlpha,
	}
	if s.ingester == nil {
		// A catalog that can ingest durably (a sharded tier) handles its
		// own writes; a plain in-memory catalog gets the non-durable
		// fallback.
		switch c := catalog.(type) {
		case Ingester:
			s.ingester = c
		case *statusq.Catalog:
			s.ingester = &memIngester{catalog: c, seen: make(map[string]bool)}
		default:
			panic("server: catalog cannot ingest and no Options.Ingester was provided")
		}
	}
	if s.maxBody == 0 {
		s.maxBody = DefaultMaxBodyBytes
	}
	switch {
	case opts.MaxInFlight == 0:
		s.inflight = make(chan struct{}, DefaultMaxInFlight)
	case opts.MaxInFlight > 0:
		s.inflight = make(chan struct{}, opts.MaxInFlight)
	}
	switch {
	case opts.RequestTimeout == 0:
		s.timeout = DefaultRequestTimeout
	case opts.RequestTimeout > 0:
		s.timeout = opts.RequestTimeout
	}
	// Register routes from the Endpoints table so the documented surface
	// and the served surface are one artifact; a table row without a
	// handler (or vice versa) fails the first constructed server, which
	// every test exercises.
	handlers := map[string]http.HandlerFunc{
		"GET /healthz":        s.handleHealth,
		"GET /readyz":         s.handleReady,
		"GET /avails":         s.handleAvails,
		"GET /query":          s.handleQuery,
		"GET /fleet":          s.handleFleet,
		"POST /query/batch":   s.handleQueryBatch,
		"GET /predict":        s.handlePredict,
		"POST /predict":       s.handlePredictBatch,
		"GET /models":         s.handleModels,
		"POST /models/reload": s.handleModelsReload,
		"POST /rccs":          s.handleIngest,
		"GET /metrics":        obs.Handler().ServeHTTP,
	}
	for _, e := range Endpoints() {
		pattern := e.Method + " " + e.Path
		h, ok := handlers[pattern]
		if !ok {
			panic(fmt.Sprintf("server: endpoint table row %q has no handler", pattern))
		}
		s.mux.HandleFunc(pattern, h)
		delete(handlers, pattern)
	}
	if len(handlers) != 0 {
		panic(fmt.Sprintf("server: %d handlers missing from the endpoint table", len(handlers)))
	}
	return s
}

// memIngester serves POST /rccs for catalogs without a WAL: same
// idempotency semantics, no durability — every acknowledgment dies with
// the process. Production deployments wire a statusq.DurableCatalog.
type memIngester struct {
	catalog *statusq.Catalog

	mu   sync.Mutex // guards seen, and serializes check-then-apply
	seen map[string]bool
}

func (m *memIngester) Ingest(key string, r domain.RCC) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if key != "" && m.seen[key] {
		return true, nil
	}
	if err := m.catalog.AddRCC(r); err != nil {
		return false, err
	}
	if key != "" {
		m.seen[key] = true
	}
	return false, nil
}

func (m *memIngester) Ready() error { return nil }

// statusRecorder captures the response code for the request log and
// lets the panic handler know whether headers already went out.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.wrote {
		return
	}
	r.wrote = true
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if !r.wrote {
		r.wrote = true // implicit 200
	}
	return r.ResponseWriter.Write(b)
}

// ServeHTTP implements http.Handler: the middleware stack (panic
// recovery, load shedding, per-request deadline, metrics, trace
// emission) around the route mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	route := routeLabel(r.URL.Path)
	span := obs.NewSpan(r.Method, route)
	if uri := r.URL.RequestURI(); uri != route {
		span.Set("uri", uri)
	}
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	mInFlight.Inc()
	defer mInFlight.Dec()
	// finish records the request outcome exactly once: route counters,
	// the latency histogram, and the structured trace line through the
	// request logger. Every exit path below funnels through it.
	finished := false
	finish := func() {
		if finished {
			return
		}
		finished = true
		mRequests.With(route, r.Method, strconv.Itoa(rec.status)).Inc()
		sec := span.Elapsed().Seconds()
		mLatency.With(route).Observe(sec)
		s.noteLatency(sec)
		if s.logger != nil {
			s.logger.Printf("%s", span.Line(rec.status))
		}
	}

	// Panic recovery: a panicking handler answers 500 (when the header
	// is still ours to send) and the process keeps serving. net/http
	// would also swallow the panic, but only by killing the connection;
	// here the client gets a real response and the stack is logged.
	// http.ErrAbortHandler is the sanctioned abort signal — re-raise it.
	defer func() {
		if v := recover(); v != nil {
			if err, ok := v.(error); ok && errors.Is(err, http.ErrAbortHandler) {
				panic(v)
			}
			mPanics.Inc()
			span.Set("outcome", "panic")
			s.logf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
			if !rec.wrote {
				s.writeErr(rec, r, http.StatusInternalServerError, fmt.Errorf("internal server error"))
			}
			finish()
		}
	}()

	// Load shedding — but never for probes or scrapes: a saturated
	// server must still answer /healthz (it is alive), /readyz honestly,
	// and /metrics, or overload hides its own diagnosis.
	if s.inflight != nil && !probeBypass(r.URL.Path) {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
		default:
			mShed.Inc()
			span.Set("outcome", "shed")
			rec.Header().Set("Retry-After", s.retryAfterSeconds())
			s.writeErr(rec, r, http.StatusServiceUnavailable, fmt.Errorf("server at capacity; retry"))
			finish()
			return
		}
	}

	ctx := obs.WithSpan(r.Context(), span)
	if s.timeout > 0 {
		tctx, cancel := context.WithTimeout(ctx, s.timeout)
		defer cancel()
		ctx = tctx
	}
	r = r.WithContext(ctx)

	s.mux.ServeHTTP(rec, r)
	finish()
}

// maxRetryAfterSeconds caps the derived backoff hint: past a minute the
// client should be probing /readyz, not sleeping longer.
const maxRetryAfterSeconds = 60

// noteLatency folds one request's latency into the server's EWMA
// (alpha 1/8; the first observation seeds the average). Lock-free so
// the request path never serializes on it.
func (s *Server) noteLatency(sec float64) {
	for {
		old := s.latEWMA.Load()
		avg := sec
		if old != 0 {
			avg = math.Float64frombits(old) + (sec-math.Float64frombits(old))/8
		}
		if s.latEWMA.CompareAndSwap(old, math.Float64bits(avg)) {
			return
		}
	}
}

// retryAfterSeconds derives the Retry-After hint on 503 responses from
// current in-flight pressure instead of a hardcoded constant: the
// expected backlog drain time is (mean request latency × in-flight
// depth / concurrency), rounded up and clamped to [1, 60] seconds. A
// lightly loaded server still says 1; a server saturated with slow
// requests — e.g. every worker stuck on one faulted shard — tells
// clients to back off for as long as the backlog will realistically
// take to clear.
func (s *Server) retryAfterSeconds() string {
	depth, capacity := 0, 1
	if s.inflight != nil {
		depth = len(s.inflight)
		if c := cap(s.inflight); c > 1 {
			capacity = c
		}
	}
	mean := math.Float64frombits(s.latEWMA.Load())
	secs := int(math.Ceil(mean * float64(depth) / float64(capacity)))
	if secs < 1 {
		secs = 1
	}
	if secs > maxRetryAfterSeconds {
		secs = maxRetryAfterSeconds
	}
	return strconv.Itoa(secs)
}

type errorBody struct {
	Error string `json:"error"`
}

// writeJSON encodes v to the client. An encode failure at this point is a
// write failure (typically a disconnected client — headers are already
// sent), so it is logged with the request path rather than discarded.
func (s *Server) writeJSON(w http.ResponseWriter, r *http.Request, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logf("%s %s: response write failed: %v", r.Method, r.URL.Path, err)
	}
}

// logf writes to the configured request logger, falling back to the
// process logger so write failures stay visible even when request logging
// is disabled.
func (s *Server) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
		return
	}
	log.Printf(format, args...)
}

func (s *Server) writeErr(w http.ResponseWriter, r *http.Request, status int, err error) {
	s.writeJSON(w, r, status, errorBody{Error: err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, r, http.StatusOK, map[string]string{"status": "ok"})
}

// HealthReporter is implemented by ingesters that expose per-shard
// health (statusq.ShardedCatalog): /readyz folds the rows into its JSON
// body so operators and load balancers see which shard is unhealthy,
// not just that one is.
type HealthReporter interface {
	// ShardHealths reports one row per shard; see
	// statusq.ShardedCatalog.ShardHealths.
	ShardHealths() []statusq.ShardHealthStatus
}

// readyShardView is one shard's row in the /readyz body.
type readyShardView struct {
	Shard       int    `json:"shard"`
	State       string `json:"state"`
	Replicas    int    `json:"replicas"`
	Live        int    `json:"live"`
	Lag         uint64 `json:"lag"`
	Promotable  bool   `json:"promotable"`
	BreakerOpen bool   `json:"breaker_open,omitempty"`
}

// readyView is the /readyz body. Shards is present only when the
// ingester reports per-shard health, so unsharded deployments keep the
// plain {"status":"ready"} contract.
type readyView struct {
	Status string           `json:"status"`
	Error  string           `json:"error,omitempty"`
	Shards []readyShardView `json:"shards,omitempty"`
}

// handleReady distinguishes "process up" from "safe to send traffic":
// ready means the catalog is restored and the WAL (when configured) is
// open for acknowledgments. Deployments point load balancers here.
// Status contract: 503 when the ingester reports unready or any shard
// is failed with no promotable replica (appends there cannot be
// acknowledged at all); 200 otherwise, with status "degraded" when a
// shard is impaired but the tier still acknowledges everywhere.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	view := readyView{Status: "ready"}
	status := http.StatusOK
	if err := s.ingester.Ready(); err != nil {
		view.Status = "unready"
		view.Error = err.Error()
		status = http.StatusServiceUnavailable
	}
	if hr, ok := s.ingester.(HealthReporter); ok {
		rows := hr.ShardHealths()
		view.Shards = make([]readyShardView, len(rows))
		for i, row := range rows {
			view.Shards[i] = readyShardView{
				Shard:       row.Shard,
				State:       row.State.String(),
				Replicas:    row.Replicas,
				Live:        row.Live,
				Lag:         row.Lag,
				Promotable:  row.Promotable,
				BreakerOpen: row.BreakerOpen,
			}
			switch {
			case row.State == statusq.ShardFailed && !row.Promotable:
				// No replica can take acknowledgments for this shard's
				// keyspace: traffic must drain elsewhere.
				if status == http.StatusOK {
					view.Status = "unready"
					status = http.StatusServiceUnavailable
				}
			case row.State != statusq.ShardHealthy:
				if view.Status == "ready" {
					view.Status = "degraded"
				}
			}
		}
	}
	s.writeJSON(w, r, status, view)
}

// availView is the /avails row.
type availView struct {
	ID        int    `json:"id"`
	ShipID    int    `json:"ship_id"`
	Status    string `json:"status"`
	PlanStart string `json:"plan_start"`
	PlanEnd   string `json:"plan_end"`
	ActStart  string `json:"actual_start"`
	ActEnd    string `json:"actual_end,omitempty"`
	DelayDays *int   `json:"delay_days,omitempty"`
}

func (s *Server) handleAvails(w http.ResponseWriter, r *http.Request) {
	ids := s.catalog.AvailIDs()
	out := make([]availView, 0, len(ids)) // non-nil: an empty catalog encodes []
	for _, id := range ids {
		a, _ := s.catalog.Avail(id)
		v := availView{
			ID: a.ID, ShipID: a.ShipID, Status: a.Status.String(),
			PlanStart: a.PlanStart.String(), PlanEnd: a.PlanEnd.String(),
			ActStart: a.ActStart.String(),
		}
		if a.Status == domain.StatusClosed {
			v.ActEnd = a.ActEnd.String()
			if d, err := a.Delay(); err == nil {
				v.DelayDays = &d
			}
		}
		out = append(out, v)
	}
	s.writeJSON(w, r, http.StatusOK, out)
}

// estimateView is one trajectory point of /query.
type estimateView struct {
	Timestamp float64 `json:"t_star"`
	Raw       float64 `json:"raw_days"`
	Fused     float64 `json:"fused_days"`
}

// driverView is one §5.2.5 top-feature row.
type driverView struct {
	Name        string  `json:"name"`
	Description string  `json:"description,omitempty"`
	Value       float64 `json:"value"`
	Score       float64 `json:"score"`
}

// queryView is the /query response. Stale and AsOf are the degraded-mode
// markers documented in the package comment: AsOf is the answering
// engine's revision (RCCs of this avail folded in), Stale reports that
// the engine predates the newest acknowledged history — either the
// rebuild failed and the last good engine answered, or an ingest raced
// this query.
type queryView struct {
	AvailID     int            `json:"avail_id"`
	At          string         `json:"at"`
	LogicalTime float64        `json:"t_star"`
	FinalDays   float64        `json:"estimated_delay_days"`
	Stale       bool           `json:"stale"`
	AsOf        int64          `json:"asOf"`
	Estimates   []estimateView `json:"estimates"`
	TopDrivers  []driverView   `json:"top_drivers"`
}

// queryOne answers one avail's DoMD query from the catalog's cached
// engine, falling back to the last good engine (marked stale) when the
// current rebuild fails.
func (s *Server) queryOne(ctx context.Context, id int, at domain.Day) (*queryView, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	eng, asOf, stale, err := s.catalog.EngineAsOf(id)
	if err != nil {
		return nil, err
	}
	return s.renderQuery(eng, asOf, stale, at)
}

// renderQuery evaluates one DoMD query against an already-resolved engine
// and shapes the response view. Split out of queryOne so /query/batch can
// resolve each engine once per avail and reuse it across every query that
// targets it.
func (s *Server) renderQuery(eng *statusq.Engine, asOf int64, stale bool, at domain.Day) (*queryView, error) {
	res, err := s.svc.QueryEngine(eng, at)
	if err != nil {
		return nil, err
	}
	view := &queryView{
		AvailID:     res.AvailID,
		At:          at.String(),
		LogicalTime: res.LogicalTime,
		FinalDays:   res.Final(),
		Stale:       stale,
		AsOf:        asOf,
	}
	for _, e := range res.Estimates {
		view.Estimates = append(view.Estimates, estimateView{Timestamp: e.Timestamp, Raw: e.Raw, Fused: e.Fused})
	}
	for _, d := range res.TopDrivers {
		desc, err := features.Describe(d.Name)
		if err != nil {
			desc = ""
		}
		view.TopDrivers = append(view.TopDrivers, driverView{Name: d.Name, Description: desc, Value: d.Value, Score: d.Score})
	}
	return view, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.URL.Query().Get("avail"))
	if err != nil {
		s.writeErr(w, r, http.StatusBadRequest, fmt.Errorf("missing or invalid avail parameter"))
		return
	}
	at, err := domain.ParseDay(r.URL.Query().Get("date"))
	if err != nil {
		s.writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	view, err := s.queryOne(r.Context(), id, at)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, statusq.ErrUnknownAvail) {
			status = http.StatusNotFound
		}
		s.writeErr(w, r, status, err)
		return
	}
	if sp := obs.FromContext(r.Context()); sp != nil {
		sp.SetInt("asOf", view.AsOf)
		sp.SetBool("stale", view.Stale)
	}
	s.writeJSON(w, r, http.StatusOK, view)
}

// fleetRow is one /fleet entry; failed avails carry an error message so one
// unqueryable avail doesn't hide the rest of the fleet. Result rows carry
// the same "stale"/"asOf" degraded-answer markers as /query, plus a
// "degraded" flag when the owning shard's health ladder is below healthy
// (the answer may be correct-but-stale while the shard recovers). When a
// model registry serves, each row additionally carries the predicted
// delay, its conformal band, and the producing model version — or
// prediction_unavailable under the same degraded-answer contract.
type fleetRow struct {
	AvailID               int        `json:"avail_id"`
	Degraded              bool       `json:"degraded,omitempty"`
	PredictedDelay        *float64   `json:"predicted_delay,omitempty"`
	BandLo                *float64   `json:"band_lo,omitempty"`
	BandHi                *float64   `json:"band_hi,omitempty"`
	ModelVersion          string     `json:"model_version,omitempty"`
	WindowFallback        bool       `json:"window_fallback,omitempty"`
	PredictionUnavailable bool       `json:"prediction_unavailable,omitempty"`
	Result                *queryView `json:"result,omitempty"`
	Error                 string     `json:"error,omitempty"`
}

// availHealth is implemented by catalogs that can resolve an avail to
// its owning shard's health (statusq.ShardedCatalog); /fleet uses it to
// annotate rows served by degraded or failed shards.
type availHealth interface {
	HealthForAvail(id int) statusq.ShardHealth
}

func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	at, err := domain.ParseDay(r.URL.Query().Get("date"))
	if err != nil {
		s.writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	ah, _ := s.catalog.(availHealth)
	ids := s.catalog.OngoingIDs()
	rows := make([]fleetRow, len(ids)) // non-nil: no ongoing avails encodes []
	sem := make(chan struct{}, s.fleetPar)
	var wg sync.WaitGroup
	for i, id := range ids {
		rows[i].AvailID = id
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			// Resolve the engine once and share it between the query
			// render and the prediction annotation, so the model answer
			// describes exactly the history the estimates were served from.
			if err := r.Context().Err(); err != nil {
				rows[i].Error = err.Error()
				return
			}
			eng, asOf, stale, err := s.catalog.EngineAsOf(id)
			if err != nil {
				rows[i].Error = err.Error()
			} else {
				view, err := s.renderQuery(eng, asOf, stale, at)
				if err != nil {
					rows[i].Error = err.Error()
				} else {
					rows[i].Result = view
					s.annotatePrediction(&rows[i], eng, at)
				}
			}
			if ah != nil && ah.HealthForAvail(id) != statusq.ShardHealthy {
				rows[i].Degraded = true
			}
		}()
	}
	wg.Wait()
	if sp := obs.FromContext(r.Context()); sp != nil {
		stale, failed, unavailable := 0, 0, 0
		for i := range rows {
			if rows[i].Error != "" {
				failed++
			} else if rows[i].Result != nil && rows[i].Result.Stale {
				stale++
			}
			if rows[i].PredictionUnavailable {
				unavailable++
			}
		}
		sp.SetInt("rows", int64(len(rows)))
		sp.SetInt("staleRows", int64(stale))
		sp.SetInt("failedRows", int64(failed))
		sp.SetInt("unavailablePredictions", int64(unavailable))
	}
	s.writeJSON(w, r, http.StatusOK, rows)
}

// annotatePrediction folds the model registry's answer into a fleet row:
// predicted delay, conformal band, and model version — or
// prediction_unavailable when no registry serves, the registry is empty,
// or the model fails. Never an error: fleet reads stay 200 (the PR-4
// degraded-answer contract).
func (s *Server) annotatePrediction(row *fleetRow, eng *statusq.Engine, at domain.Day) {
	if s.models == nil {
		row.PredictionUnavailable = true
		mPredictUnavailable.Inc()
		return
	}
	pred, err := s.models.Predict(eng, at, s.alpha)
	if err != nil {
		row.PredictionUnavailable = true
		mPredictUnavailable.Inc()
		return
	}
	row.PredictedDelay = &pred.Delay
	row.BandLo = &pred.Lo
	row.BandHi = &pred.Hi
	row.ModelVersion = pred.Version
	row.WindowFallback = pred.WindowFallback
}

// MaxBatchQueries caps one POST /query/batch request; beyond it the batch
// is rejected with 422 rather than silently truncated.
const MaxBatchQueries = 256

// batchIn is the POST /query/batch request body.
type batchIn struct {
	Queries []batchQueryIn `json:"queries"`
}

// batchQueryIn is one requested (avail, date) evaluation.
type batchQueryIn struct {
	Avail int    `json:"avail"`
	Date  string `json:"date"`
}

// batchRow is one /query/batch result, in request order; failed queries
// carry an error message so one bad entry doesn't fail the batch (the same
// isolation contract as /fleet rows).
type batchRow struct {
	AvailID int        `json:"avail_id"`
	Result  *queryView `json:"result,omitempty"`
	Error   string     `json:"error,omitempty"`
}

// handleQueryBatch answers many DoMD queries in one request. The point is
// amortization on warm paths: the catalog engine lookup (and any rebuild it
// triggers) happens once per distinct avail in the batch, and the
// evaluations then fan out with the same bounded parallelism and per-row
// error isolation as /fleet. Status contract: 400 malformed body or empty
// batch, 413 oversized body, 422 more than MaxBatchQueries entries, 200
// otherwise with per-row errors inline.
func (s *Server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	var in batchIn
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeErr(w, r, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		s.writeErr(w, r, http.StatusBadRequest, fmt.Errorf("malformed JSON body: %w", err))
		return
	}
	if len(in.Queries) == 0 {
		s.writeErr(w, r, http.StatusBadRequest, fmt.Errorf("empty batch: provide at least one query"))
		return
	}
	if len(in.Queries) > MaxBatchQueries {
		s.writeErr(w, r, http.StatusUnprocessableEntity,
			fmt.Errorf("batch of %d queries exceeds the limit of %d", len(in.Queries), MaxBatchQueries))
		return
	}

	// Resolve each distinct avail's engine exactly once. Resolution is
	// sequential on purpose: builds are single-flight per avail anyway, and
	// a warm batch resolves from cache without ever blocking.
	type resolved struct {
		eng   *statusq.Engine
		asOf  int64
		stale bool
		err   error
	}
	engines := make(map[int]*resolved)
	for _, q := range in.Queries {
		if _, ok := engines[q.Avail]; ok {
			continue
		}
		res := &resolved{}
		res.eng, res.asOf, res.stale, res.err = s.catalog.EngineAsOf(q.Avail)
		engines[q.Avail] = res
	}

	rows := make([]batchRow, len(in.Queries))
	sem := make(chan struct{}, s.fleetPar)
	var wg sync.WaitGroup
	for i, q := range in.Queries {
		rows[i].AvailID = q.Avail
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := r.Context().Err(); err != nil {
				rows[i].Error = err.Error()
				return
			}
			at, err := domain.ParseDay(q.Date)
			if err != nil {
				rows[i].Error = err.Error()
				return
			}
			res := engines[q.Avail]
			if res.err != nil {
				rows[i].Error = res.err.Error()
				return
			}
			view, err := s.renderQuery(res.eng, res.asOf, res.stale, at)
			if err != nil {
				rows[i].Error = err.Error()
				return
			}
			rows[i].Result = view
		}()
	}
	wg.Wait()
	if sp := obs.FromContext(r.Context()); sp != nil {
		stale, failed := 0, 0
		for i := range rows {
			if rows[i].Error != "" {
				failed++
			} else if rows[i].Result != nil && rows[i].Result.Stale {
				stale++
			}
		}
		sp.SetInt("rows", int64(len(rows)))
		sp.SetInt("avails", int64(len(engines)))
		sp.SetInt("staleRows", int64(stale))
		sp.SetInt("failedRows", int64(failed))
	}
	s.writeJSON(w, r, http.StatusOK, rows)
}

// rccIn is the POST /rccs request body.
type rccIn struct {
	ID      int     `json:"id"`
	AvailID int     `json:"avail_id"`
	Type    string  `json:"type"`
	SWLIN   string  `json:"swlin"`
	Created string  `json:"created"`
	Settled string  `json:"settled"`
	Amount  float64 `json:"amount"`
}

// ingestView is the POST /rccs acknowledgment.
type ingestView struct {
	ID        int    `json:"id"`
	AvailID   int    `json:"avail_id"`
	Key       string `json:"idempotency_key"`
	Duplicate bool   `json:"duplicate"`
}

// handleIngest is the durable write path: parse strictly, validate
// semantically, then acknowledge only what the Ingester accepted.
// Status contract: 400 malformed body, 413 oversized body, 422 invalid
// field values, 404 unknown avail, 503 (+ Retry-After) storage fault or
// not ready, 201 acknowledged, 200 duplicate of an earlier ack.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if err := r.Context().Err(); err != nil {
		s.writeErr(w, r, http.StatusServiceUnavailable, err)
		return
	}
	var in rccIn
	body := http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeErr(w, r, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		s.writeErr(w, r, http.StatusBadRequest, fmt.Errorf("malformed JSON body: %w", err))
		return
	}

	rcc, err := parseRCC(in)
	if err != nil {
		s.writeErr(w, r, http.StatusUnprocessableEntity, err)
		return
	}
	// Resolve the avail before consulting idempotency state so an unknown
	// avail is 404 even when the key was seen; the Ingester re-checks.
	if _, ok := s.catalog.Avail(rcc.AvailID); !ok {
		s.writeErr(w, r, http.StatusNotFound,
			fmt.Errorf("statusq: rcc %d references %w %d", rcc.ID, statusq.ErrUnknownAvail, rcc.AvailID))
		return
	}
	key := r.Header.Get("Idempotency-Key")
	if key == "" {
		key = fmt.Sprintf("rcc:%d", rcc.ID)
	}
	dup, err := s.ingester.Ingest(key, rcc)
	switch {
	case errors.Is(err, statusq.ErrUnknownAvail):
		s.writeErr(w, r, http.StatusNotFound, err)
		return
	case err != nil:
		// Storage fault or not-ready: nothing was acknowledged. The
		// client retries with the same key; replay dedup makes the
		// retry exactly-once even if the failed attempt reached disk.
		// The backoff hint scales with current in-flight pressure — a
		// saturated shard shows up as piled-up requests here.
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		s.writeErr(w, r, http.StatusServiceUnavailable, err)
		return
	}
	status := http.StatusCreated
	if dup {
		status = http.StatusOK
	}
	if sp := obs.FromContext(r.Context()); sp != nil {
		sp.SetInt("rcc", int64(rcc.ID))
		sp.SetBool("duplicate", dup)
	}
	s.writeJSON(w, r, status, ingestView{ID: rcc.ID, AvailID: rcc.AvailID, Key: key, Duplicate: dup})
}

// parseRCC maps the wire form onto a validated domain.RCC; every failure
// here is a 422 (well-formed JSON, semantically unusable values).
func parseRCC(in rccIn) (domain.RCC, error) {
	var zero domain.RCC
	if in.ID <= 0 {
		return zero, fmt.Errorf("rcc id must be a positive integer, got %d", in.ID)
	}
	typ, err := domain.ParseRCCType(in.Type)
	if err != nil {
		return zero, fmt.Errorf("bad rcc type %q (want G, NW, or NG)", in.Type)
	}
	code, err := swlin.Parse(in.SWLIN)
	if err != nil {
		return zero, err
	}
	if !code.Valid() {
		return zero, fmt.Errorf("swlin %q out of range", in.SWLIN)
	}
	created, err := domain.ParseDay(in.Created)
	if err != nil {
		return zero, fmt.Errorf("bad created date: %w", err)
	}
	settled, err := domain.ParseDay(in.Settled)
	if err != nil {
		return zero, fmt.Errorf("bad settled date: %w", err)
	}
	rcc := domain.RCC{
		ID: in.ID, AvailID: in.AvailID, Type: typ, SWLIN: int(code),
		Created: created, Settled: settled, Amount: in.Amount,
	}
	if err := rcc.Validate(); err != nil {
		return zero, err
	}
	return rcc, nil
}
