// Package server exposes the DoMD framework as an HTTP back end — the role
// the paper describes for the deployed system ("a back-end engine for a
// fleet-readiness application within the Navy's SMDII"). It wraps a trained
// core.Pipeline and a statusq.Catalog behind a small JSON API:
//
//	GET /healthz                          liveness probe
//	GET /avails                           list avails (id, status, dates)
//	GET /query?avail=ID&date=2024-04-12   DoMD query (Problem 1)
//	GET /fleet?date=2024-04-12            DoMD for every ongoing avail
//
// The server is read-only over the model; RCC ingestion goes through the
// catalog before the server is constructed (or via a fronting pipeline in
// the enclave).
package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"domd/internal/core"
	"domd/internal/domain"
	"domd/internal/features"
	"domd/internal/index"
	"domd/internal/statusq"
)

// Server handles the SMDII-style JSON API.
type Server struct {
	svc     *core.QueryService
	catalog *statusq.Catalog
	mux     *http.ServeMux
}

// New wires a trained pipeline and an avail catalog into an http.Handler.
func New(p *core.Pipeline, ext *features.Extractor, catalog *statusq.Catalog, kind index.Kind) *Server {
	s := &Server{
		svc:     core.NewQueryService(p, ext, kind),
		catalog: catalog,
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /avails", s.handleAvails)
	s.mux.HandleFunc("GET /query", s.handleQuery)
	s.mux.HandleFunc("GET /fleet", s.handleFleet)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// availView is the /avails row.
type availView struct {
	ID        int    `json:"id"`
	ShipID    int    `json:"ship_id"`
	Status    string `json:"status"`
	PlanStart string `json:"plan_start"`
	PlanEnd   string `json:"plan_end"`
	ActStart  string `json:"actual_start"`
	ActEnd    string `json:"actual_end,omitempty"`
	DelayDays *int   `json:"delay_days,omitempty"`
}

func (s *Server) handleAvails(w http.ResponseWriter, _ *http.Request) {
	var out []availView
	for _, id := range s.catalog.AvailIDs() {
		a, _ := s.catalog.Avail(id)
		v := availView{
			ID: a.ID, ShipID: a.ShipID, Status: a.Status.String(),
			PlanStart: a.PlanStart.String(), PlanEnd: a.PlanEnd.String(),
			ActStart: a.ActStart.String(),
		}
		if a.Status == domain.StatusClosed {
			v.ActEnd = a.ActEnd.String()
			if d, err := a.Delay(); err == nil {
				v.DelayDays = &d
			}
		}
		out = append(out, v)
	}
	writeJSON(w, http.StatusOK, out)
}

// estimateView is one trajectory point of /query.
type estimateView struct {
	Timestamp float64 `json:"t_star"`
	Raw       float64 `json:"raw_days"`
	Fused     float64 `json:"fused_days"`
}

// driverView is one §5.2.5 top-feature row.
type driverView struct {
	Name        string  `json:"name"`
	Description string  `json:"description,omitempty"`
	Value       float64 `json:"value"`
	Score       float64 `json:"score"`
}

// queryView is the /query response.
type queryView struct {
	AvailID     int            `json:"avail_id"`
	At          string         `json:"at"`
	LogicalTime float64        `json:"t_star"`
	FinalDays   float64        `json:"estimated_delay_days"`
	Estimates   []estimateView `json:"estimates"`
	TopDrivers  []driverView   `json:"top_drivers"`
}

func (s *Server) queryOne(id int, at domain.Day) (*queryView, error) {
	a, ok := s.catalog.Avail(id)
	if !ok {
		return nil, fmt.Errorf("unknown avail %d", id)
	}
	res, err := s.svc.Query(a, s.catalog.RCCs(id), at)
	if err != nil {
		return nil, err
	}
	view := &queryView{
		AvailID:     res.AvailID,
		At:          at.String(),
		LogicalTime: res.LogicalTime,
		FinalDays:   res.Final(),
	}
	for _, e := range res.Estimates {
		view.Estimates = append(view.Estimates, estimateView{Timestamp: e.Timestamp, Raw: e.Raw, Fused: e.Fused})
	}
	for _, d := range res.TopDrivers {
		desc, err := features.Describe(d.Name)
		if err != nil {
			desc = ""
		}
		view.TopDrivers = append(view.TopDrivers, driverView{Name: d.Name, Description: desc, Value: d.Value, Score: d.Score})
	}
	return view, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var id int
	if _, err := fmt.Sscanf(r.URL.Query().Get("avail"), "%d", &id); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing or invalid avail parameter"))
		return
	}
	at, err := domain.ParseDay(r.URL.Query().Get("date"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	view, err := s.queryOne(id, at)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if _, ok := s.catalog.Avail(id); !ok {
			status = http.StatusNotFound
		}
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// fleetRow is one /fleet entry; failed avails carry an error message so one
// unqueryable avail doesn't hide the rest of the fleet.
type fleetRow struct {
	AvailID int        `json:"avail_id"`
	Result  *queryView `json:"result,omitempty"`
	Error   string     `json:"error,omitempty"`
}

func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	at, err := domain.ParseDay(r.URL.Query().Get("date"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var rows []fleetRow
	for _, id := range s.catalog.OngoingIDs() {
		view, err := s.queryOne(id, at)
		row := fleetRow{AvailID: id}
		if err != nil {
			row.Error = err.Error()
		} else {
			row.Result = view
		}
		rows = append(rows, row)
	}
	writeJSON(w, http.StatusOK, rows)
}
