// Package server exposes the DoMD framework as an HTTP back end — the role
// the paper describes for the deployed system ("a back-end engine for a
// fleet-readiness application within the Navy's SMDII"). It wraps a trained
// core.Pipeline and a statusq.Catalog behind a small JSON API:
//
//	GET /healthz                          liveness probe
//	GET /avails                           list avails (id, status, dates)
//	GET /query?avail=ID&date=2024-04-12   DoMD query (Problem 1)
//	GET /fleet?date=2024-04-12            DoMD for every ongoing avail
//
// The handler is safe for concurrent use: queries are answered from the
// catalog's cached per-avail engines (single-flight built, never rebuilt
// per request), and RCC ingestion may proceed concurrently through
// statusq.Catalog.AddRCC, which atomically invalidates the affected engine.
// /fleet fans out over the ongoing avails with bounded parallelism and
// per-avail error isolation, honoring the request context.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"time"

	"domd/internal/core"
	"domd/internal/domain"
	"domd/internal/features"
	"domd/internal/statusq"
)

// DefaultFleetParallelism bounds the /fleet fan-out when Options leaves it
// unset: wide enough to hide per-avail latency, narrow enough that one
// fleet request cannot monopolize the process.
const DefaultFleetParallelism = 8

// Options tune the handler.
type Options struct {
	// FleetParallelism caps the number of avails queried concurrently by
	// one /fleet request; <= 0 selects DefaultFleetParallelism.
	FleetParallelism int
	// Logger receives one line per request (method, path, status,
	// duration). nil disables request logging.
	Logger *log.Logger
}

// Server handles the SMDII-style JSON API.
type Server struct {
	svc      *core.QueryService
	catalog  *statusq.Catalog
	mux      *http.ServeMux
	fleetPar int
	logger   *log.Logger
}

// New wires a trained pipeline and an avail catalog into an http.Handler.
// Queries hit the catalog's engine cache; the catalog's index kind decides
// the Status Query backend.
func New(p *core.Pipeline, ext *features.Extractor, catalog *statusq.Catalog, opts Options) *Server {
	par := opts.FleetParallelism
	if par <= 0 {
		par = DefaultFleetParallelism
	}
	s := &Server{
		svc:      core.NewQueryService(p, ext, catalog.Kind()),
		catalog:  catalog,
		mux:      http.NewServeMux(),
		fleetPar: par,
		logger:   opts.Logger,
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /avails", s.handleAvails)
	s.mux.HandleFunc("GET /query", s.handleQuery)
	s.mux.HandleFunc("GET /fleet", s.handleFleet)
	return s
}

// statusRecorder captures the response code for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.logger == nil {
		s.mux.ServeHTTP(w, r)
		return
	}
	start := time.Now()
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(rec, r)
	s.logger.Printf("%s %s %d %s", r.Method, r.URL.RequestURI(), rec.status, time.Since(start).Round(time.Microsecond))
}

type errorBody struct {
	Error string `json:"error"`
}

// writeJSON encodes v to the client. An encode failure at this point is a
// write failure (typically a disconnected client — headers are already
// sent), so it is logged with the request path rather than discarded.
func (s *Server) writeJSON(w http.ResponseWriter, r *http.Request, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logf("%s %s: response write failed: %v", r.Method, r.URL.Path, err)
	}
}

// logf writes to the configured request logger, falling back to the
// process logger so write failures stay visible even when request logging
// is disabled.
func (s *Server) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
		return
	}
	log.Printf(format, args...)
}

func (s *Server) writeErr(w http.ResponseWriter, r *http.Request, status int, err error) {
	s.writeJSON(w, r, status, errorBody{Error: err.Error()})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, r, http.StatusOK, map[string]string{"status": "ok"})
}

// availView is the /avails row.
type availView struct {
	ID        int    `json:"id"`
	ShipID    int    `json:"ship_id"`
	Status    string `json:"status"`
	PlanStart string `json:"plan_start"`
	PlanEnd   string `json:"plan_end"`
	ActStart  string `json:"actual_start"`
	ActEnd    string `json:"actual_end,omitempty"`
	DelayDays *int   `json:"delay_days,omitempty"`
}

func (s *Server) handleAvails(w http.ResponseWriter, r *http.Request) {
	ids := s.catalog.AvailIDs()
	out := make([]availView, 0, len(ids)) // non-nil: an empty catalog encodes []
	for _, id := range ids {
		a, _ := s.catalog.Avail(id)
		v := availView{
			ID: a.ID, ShipID: a.ShipID, Status: a.Status.String(),
			PlanStart: a.PlanStart.String(), PlanEnd: a.PlanEnd.String(),
			ActStart: a.ActStart.String(),
		}
		if a.Status == domain.StatusClosed {
			v.ActEnd = a.ActEnd.String()
			if d, err := a.Delay(); err == nil {
				v.DelayDays = &d
			}
		}
		out = append(out, v)
	}
	s.writeJSON(w, r, http.StatusOK, out)
}

// estimateView is one trajectory point of /query.
type estimateView struct {
	Timestamp float64 `json:"t_star"`
	Raw       float64 `json:"raw_days"`
	Fused     float64 `json:"fused_days"`
}

// driverView is one §5.2.5 top-feature row.
type driverView struct {
	Name        string  `json:"name"`
	Description string  `json:"description,omitempty"`
	Value       float64 `json:"value"`
	Score       float64 `json:"score"`
}

// queryView is the /query response.
type queryView struct {
	AvailID     int            `json:"avail_id"`
	At          string         `json:"at"`
	LogicalTime float64        `json:"t_star"`
	FinalDays   float64        `json:"estimated_delay_days"`
	Estimates   []estimateView `json:"estimates"`
	TopDrivers  []driverView   `json:"top_drivers"`
}

// queryOne answers one avail's DoMD query from the catalog's cached engine.
func (s *Server) queryOne(ctx context.Context, id int, at domain.Day) (*queryView, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	eng, err := s.catalog.Engine(id)
	if err != nil {
		return nil, err
	}
	res, err := s.svc.QueryEngine(eng, at)
	if err != nil {
		return nil, err
	}
	view := &queryView{
		AvailID:     res.AvailID,
		At:          at.String(),
		LogicalTime: res.LogicalTime,
		FinalDays:   res.Final(),
	}
	for _, e := range res.Estimates {
		view.Estimates = append(view.Estimates, estimateView{Timestamp: e.Timestamp, Raw: e.Raw, Fused: e.Fused})
	}
	for _, d := range res.TopDrivers {
		desc, err := features.Describe(d.Name)
		if err != nil {
			desc = ""
		}
		view.TopDrivers = append(view.TopDrivers, driverView{Name: d.Name, Description: desc, Value: d.Value, Score: d.Score})
	}
	return view, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.URL.Query().Get("avail"))
	if err != nil {
		s.writeErr(w, r, http.StatusBadRequest, fmt.Errorf("missing or invalid avail parameter"))
		return
	}
	at, err := domain.ParseDay(r.URL.Query().Get("date"))
	if err != nil {
		s.writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	view, err := s.queryOne(r.Context(), id, at)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if _, ok := s.catalog.Avail(id); !ok {
			status = http.StatusNotFound
		}
		s.writeErr(w, r, status, err)
		return
	}
	s.writeJSON(w, r, http.StatusOK, view)
}

// fleetRow is one /fleet entry; failed avails carry an error message so one
// unqueryable avail doesn't hide the rest of the fleet.
type fleetRow struct {
	AvailID int        `json:"avail_id"`
	Result  *queryView `json:"result,omitempty"`
	Error   string     `json:"error,omitempty"`
}

func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	at, err := domain.ParseDay(r.URL.Query().Get("date"))
	if err != nil {
		s.writeErr(w, r, http.StatusBadRequest, err)
		return
	}
	ids := s.catalog.OngoingIDs()
	rows := make([]fleetRow, len(ids)) // non-nil: no ongoing avails encodes []
	sem := make(chan struct{}, s.fleetPar)
	var wg sync.WaitGroup
	for i, id := range ids {
		rows[i].AvailID = id
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			view, err := s.queryOne(r.Context(), id, at)
			if err != nil {
				rows[i].Error = err.Error()
			} else {
				rows[i].Result = view
			}
		}()
	}
	wg.Wait()
	s.writeJSON(w, r, http.StatusOK, rows)
}
