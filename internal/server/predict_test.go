package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"domd/internal/core"
	"domd/internal/domain"
	"domd/internal/features"
	"domd/internal/fusion"
	"domd/internal/index"
	"domd/internal/ml/gbt"
	"domd/internal/modelserve"
	"domd/internal/navsim"
	"domd/internal/split"
	"domd/internal/statusq"
	"domd/internal/wal"
)

// trainTestVersion trains one two-window model version per test binary;
// every prediction test writes it into its own registry directory.
var trainTestVersion = sync.OnceValues(func() (*modelserve.TrainedVersion, error) {
	ds, err := navsim.Generate(navsim.Config{NumClosed: 40, NumOngoing: 3, MeanRCCsPerAvail: 40, Seed: 12})
	if err != nil {
		return nil, err
	}
	ext := features.NewExtractor()
	tensor, err := features.BuildTensor(ext, ds.Avails, ds.RCCsByAvail(), 25, index.KindAVL)
	if err != nil {
		return nil, err
	}
	sp, err := split.Make(split.DefaultConfig(), tensor.Avails)
	if err != nil {
		return nil, err
	}
	cfg := core.BaselineConfig()
	cfg.Fusion = fusion.MethodAverage
	p := gbt.DefaultParams()
	p.NumRounds = 15
	p.LearningRate = 0.3
	cfg.GBTParams = &p
	return modelserve.TrainVersion(tensor, sp.Train, sp.Val, modelserve.TrainOptions{
		Windows: []modelserve.Window{{Lo: 0, Hi: 50}, {Lo: 50, Hi: 100}},
		Alpha:   0.2,
		Version: "v001",
		Config:  cfg,
	})
})

// newTestRegistry publishes the shared trained version into a fresh
// per-test directory and opens a registry over it.
func newTestRegistry(t *testing.T) *modelserve.Registry {
	t.Helper()
	tv, err := trainTestVersion()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := tv.WriteTo(dir, true); err != nil {
		t.Fatal(err)
	}
	reg, err := modelserve.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// newPredictServer is newTestServer with a model registry wired in — the
// `domd serve -model-dir` configuration.
func newPredictServer(t *testing.T) (*httptest.Server, *navsim.Dataset, *modelserve.Registry) {
	t.Helper()
	ds, err := navsim.Generate(navsim.Config{NumClosed: 40, NumOngoing: 3, MeanRCCsPerAvail: 40, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	pipe, ext := trainTestPipeline()
	catalog, err := statusq.NewCatalog(ds.Avails, ds.RCCs, index.KindAVL)
	if err != nil {
		t.Fatal(err)
	}
	reg := newTestRegistry(t)
	srv := httptest.NewServer(New(pipe, ext, catalog, Options{Models: reg}))
	t.Cleanup(srv.Close)
	return srv, ds, reg
}

// newShardedPredictServer is newShardedServer with a model registry —
// the `domd serve -shards 4 -model-dir` configuration.
func newShardedPredictServer(t *testing.T) (*httptest.Server, *navsim.Dataset, *statusq.ShardedCatalog) {
	t.Helper()
	ds, err := navsim.Generate(navsim.Config{NumClosed: 40, NumOngoing: 8, MeanRCCsPerAvail: 40, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	pipe, ext := trainTestPipeline()
	sc, _, err := statusq.OpenSharded(t.TempDir(), 4, ds.Avails, ds.RCCs, index.KindAVL,
		statusq.DurableOptions{WAL: wal.Options{Policy: wal.SyncNever}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sc.Close() })
	srv := httptest.NewServer(New(pipe, ext, sc, Options{Models: newTestRegistry(t)}))
	t.Cleanup(srv.Close)
	return srv, ds, sc
}

// firstOngoing returns an ongoing avail from the fixture fleet.
func firstOngoing(t *testing.T, ds *navsim.Dataset) int {
	t.Helper()
	for i := range ds.Avails {
		if ds.Avails[i].Status == domain.StatusOngoing {
			return i
		}
	}
	t.Fatal("no ongoing avail in fixture")
	return -1
}

func TestPredictEndpoint(t *testing.T) {
	srv, ds, _ := newPredictServer(t)
	i := firstOngoing(t, ds)
	a := &ds.Avails[i]
	date := a.PhysicalTime(60).String()

	var row struct {
		AvailID        int      `json:"avail_id"`
		LogicalTime    float64  `json:"t_star"`
		PredictedDelay *float64 `json:"predicted_delay"`
		BandLo         *float64 `json:"band_lo"`
		BandHi         *float64 `json:"band_hi"`
		Alpha          float64  `json:"alpha"`
		ModelVersion   string   `json:"model_version"`
		Window         *struct {
			Lo float64 `json:"lo"`
			Hi float64 `json:"hi"`
		} `json:"window"`
		WindowFallback        bool `json:"window_fallback"`
		PredictionUnavailable bool `json:"prediction_unavailable"`
	}
	get(t, fmt.Sprintf("%s/predict?avail=%d&date=%s&alpha=0.1", srv.URL, a.ID, date), http.StatusOK, &row)
	if row.PredictionUnavailable {
		t.Fatal("prediction unavailable with a loaded registry")
	}
	if row.PredictedDelay == nil || row.BandLo == nil || row.BandHi == nil {
		t.Fatalf("missing prediction fields: %+v", row)
	}
	if *row.BandLo > *row.PredictedDelay || *row.PredictedDelay > *row.BandHi {
		t.Fatalf("band [%g, %g] does not contain %g", *row.BandLo, *row.BandHi, *row.PredictedDelay)
	}
	if row.ModelVersion != "v001" || row.Alpha != 0.1 {
		t.Fatalf("provenance: version=%q alpha=%g", row.ModelVersion, row.Alpha)
	}
	if row.Window == nil || row.Window.Lo != 50 || row.Window.Hi != 100 || row.WindowFallback {
		t.Fatalf("t*=60 routed to %+v fallback=%v", row.Window, row.WindowFallback)
	}

	// Omitting alpha defers to the model version's default (0.2).
	get(t, fmt.Sprintf("%s/predict?avail=%d&date=%s", srv.URL, a.ID, date), http.StatusOK, &row)
	if row.Alpha != 0.2 {
		t.Errorf("default alpha = %g, want the version's 0.2", row.Alpha)
	}

	// Status contract: 400 bad parameters, 404 unknown avail, 422
	// before the avail's actual start.
	get(t, srv.URL+"/predict?avail=nope&date="+date, http.StatusBadRequest, nil)
	get(t, fmt.Sprintf("%s/predict?avail=%d&date=%s&alpha=1.5", srv.URL, a.ID, date), http.StatusBadRequest, nil)
	get(t, srv.URL+"/predict?avail=999999&date="+date, http.StatusNotFound, nil)
	get(t, fmt.Sprintf("%s/predict?avail=%d&date=%s", srv.URL, a.ID, (a.ActStart - 30).String()),
		http.StatusUnprocessableEntity, nil)
}

func TestPredictWithoutRegistryNever5xx(t *testing.T) {
	srv, ds, _ := newTestServer(t) // no Options.Models
	i := firstOngoing(t, ds)
	a := &ds.Avails[i]
	date := a.PhysicalTime(60).String()

	var row struct {
		PredictionUnavailable bool   `json:"prediction_unavailable"`
		UnavailableReason     string `json:"unavailable_reason"`
		PredictedDelay        *float64
	}
	get(t, fmt.Sprintf("%s/predict?avail=%d&date=%s", srv.URL, a.ID, date), http.StatusOK, &row)
	if !row.PredictionUnavailable || row.UnavailableReason == "" {
		t.Fatalf("row = %+v, want prediction_unavailable with a reason", row)
	}
	if row.PredictedDelay != nil {
		t.Error("unavailable answer still carries a point estimate")
	}

	// /fleet rows degrade the same way, and the DoMD estimate survives.
	var fleet []map[string]any
	get(t, srv.URL+"/fleet?date="+fleetDate(ds).String(), http.StatusOK, &fleet)
	for _, r := range fleet {
		if r["error"] != nil {
			continue
		}
		if r["prediction_unavailable"] != true {
			t.Errorf("fleet row %v lacks prediction_unavailable", r["avail_id"])
		}
		if r["result"] == nil {
			t.Errorf("fleet row %v lost its DoMD estimate", r["avail_id"])
		}
	}

	// /models reports disabled; the reload admin path is the one place
	// a missing registry may 5xx.
	var models struct {
		Enabled bool `json:"enabled"`
	}
	get(t, srv.URL+"/models", http.StatusOK, &models)
	if models.Enabled {
		t.Error("models reports enabled without a registry")
	}
	resp, err := http.Post(srv.URL+"/models/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("reload without registry: %d, want 503", resp.StatusCode)
	}
}

// TestFleetCarriesPredictions is the single-catalog half of the fleet
// acceptance criterion: every healthy /fleet row carries the prediction
// triplet and model version.
func TestFleetCarriesPredictions(t *testing.T) {
	srv, ds, _ := newPredictServer(t)
	var fleet []map[string]any
	get(t, srv.URL+"/fleet?date="+fleetDate(ds).String(), http.StatusOK, &fleet)
	if len(fleet) == 0 {
		t.Fatal("empty fleet")
	}
	assertFleetPredictions(t, fleet)
}

// TestShardedFleetCarriesPredictions is the sharded half: the fan-out
// path annotates rows exactly like the single-catalog path.
func TestShardedFleetCarriesPredictions(t *testing.T) {
	srv, ds, sc := newShardedPredictServer(t)
	// The fixture fleet's ongoing avails span shards (crossShardOngoing
	// skips otherwise), so this sweep exercises the scatter-gather path.
	crossShardOngoing(t, ds, sc)
	var fleet []map[string]any
	get(t, srv.URL+"/fleet?date="+fleetDate(ds).String(), http.StatusOK, &fleet)
	if len(fleet) < 2 {
		t.Fatalf("%d fleet rows", len(fleet))
	}
	assertFleetPredictions(t, fleet)
}

func assertFleetPredictions(t *testing.T, fleet []map[string]any) {
	t.Helper()
	predicted := 0
	for _, r := range fleet {
		if r["error"] != nil {
			continue
		}
		if r["prediction_unavailable"] == true {
			t.Errorf("fleet row %v prediction unavailable with a loaded registry", r["avail_id"])
			continue
		}
		delay, okD := r["predicted_delay"].(float64)
		lo, okL := r["band_lo"].(float64)
		hi, okH := r["band_hi"].(float64)
		version, okV := r["model_version"].(string)
		if !okD || !okL || !okH || !okV {
			t.Errorf("fleet row %v missing prediction fields: %v", r["avail_id"], r)
			continue
		}
		if lo > delay || delay > hi || version == "" {
			t.Errorf("fleet row %v band [%g, %g] delay %g version %q", r["avail_id"], lo, hi, delay, version)
		}
		predicted++
	}
	if predicted == 0 {
		t.Fatal("no fleet row carried a prediction")
	}
}

func TestPredictBatch(t *testing.T) {
	srv, ds, _ := newPredictServer(t)
	i := firstOngoing(t, ds)
	a := &ds.Avails[i]
	date := a.PhysicalTime(60).String()

	body := fmt.Sprintf(`{"queries":[
		{"avail":%d,"date":%q},
		{"avail":%d,"date":%q},
		{"avail":999999,"date":%q},
		{"avail":%d,"date":"not-a-date"}
	],"alpha":0.1}`, a.ID, date, a.ID, date, date, a.ID)
	resp, err := http.Post(srv.URL+"/predict", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var rows []struct {
		AvailID int    `json:"avail_id"`
		Error   string `json:"error"`
		Result  *struct {
			PredictedDelay *float64 `json:"predicted_delay"`
			ModelVersion   string   `json:"model_version"`
			Alpha          float64  `json:"alpha"`
		} `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, k := range []int{0, 1} {
		if rows[k].Error != "" || rows[k].Result == nil || rows[k].Result.PredictedDelay == nil {
			t.Fatalf("row %d = %+v", k, rows[k])
		}
		if rows[k].Result.ModelVersion != "v001" || rows[k].Result.Alpha != 0.1 {
			t.Fatalf("row %d provenance = %+v", k, rows[k].Result)
		}
	}
	if rows[2].Error == "" || rows[3].Error == "" {
		t.Fatalf("bad rows not isolated: %+v / %+v", rows[2], rows[3])
	}

	// Contract edges shared with /query/batch.
	for _, c := range []struct {
		body string
		want int
	}{
		{`{"queries":[]}`, http.StatusBadRequest},
		{`{"queries":[{"avail":1,"date":"2020-01-01"}],"alpha":2}`, http.StatusUnprocessableEntity},
		{`{"nope":true}`, http.StatusBadRequest},
	} {
		resp, err := http.Post(srv.URL+"/predict", "application/json", bytes.NewReader([]byte(c.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("POST /predict %s: %d, want %d", c.body, resp.StatusCode, c.want)
		}
	}
}

func TestModelsListingAndReload(t *testing.T) {
	srv, ds, reg := newPredictServer(t)
	i := firstOngoing(t, ds)
	a := &ds.Avails[i]
	date := a.PhysicalTime(60).String()

	var models struct {
		Enabled  bool   `json:"enabled"`
		Active   string `json:"active"`
		Versions []struct {
			Version string `json:"version"`
			Active  bool   `json:"active"`
			Windows []struct {
				Lo     float64 `json:"lo"`
				Hi     float64 `json:"hi"`
				SHA256 string  `json:"sha256"`
			} `json:"windows"`
		} `json:"versions"`
	}
	get(t, srv.URL+"/models", http.StatusOK, &models)
	if !models.Enabled || models.Active != "v001" || len(models.Versions) != 1 {
		t.Fatalf("models = %+v", models)
	}
	if v := models.Versions[0]; !v.Active || len(v.Windows) != 2 || len(v.Windows[0].SHA256) != 64 {
		t.Fatalf("version row = %+v", models.Versions[0])
	}

	// Publish v002 (the same artifacts under a new name — an operator
	// rollout is a manifest edit) and hot-swap it in.
	publishCloneVersion(t, reg.Dir(), "v002")
	var rep struct {
		Active   string `json:"active"`
		Swapped  bool   `json:"swapped"`
		Versions int    `json:"versions"`
	}
	postReload(t, srv.URL, http.StatusOK, &rep)
	if !rep.Swapped || rep.Active != "v002" || rep.Versions != 2 {
		t.Fatalf("reload report = %+v", rep)
	}
	var row struct {
		ModelVersion string `json:"model_version"`
	}
	get(t, fmt.Sprintf("%s/predict?avail=%d&date=%s", srv.URL, a.ID, date), http.StatusOK, &row)
	if row.ModelVersion != "v002" {
		t.Fatalf("serving %q after swap", row.ModelVersion)
	}
}

// publishCloneVersion adds a manifest version named name that reuses the
// currently active version's artifact files, and activates it. This is
// the cheap-rollout idiom the hot-swap tests lean on: every reload is a
// real manifest read + artifact load + snapshot swap, without paying for
// a real retraining per version.
func publishCloneVersion(t *testing.T, dir, name string) {
	t.Helper()
	man, err := modelserve.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	active, ok := man.Version(man.Active)
	if !ok {
		t.Fatalf("no active version in %s", dir)
	}
	clone := *active
	clone.Version = name
	man.Versions = append(man.Versions, clone)
	man.Active = name
	if err := man.Write(dir); err != nil {
		t.Fatal(err)
	}
}

func postReload(t *testing.T, base string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Post(base+"/models/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST /models/reload: %d, want %d", resp.StatusCode, wantStatus)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

// TestConcurrentPredictHotSwap is the hot-swap stress gate (run under
// -race by `make stress`): readers hammer /predict while an operator
// rolls out a stream of versions via /models/reload. Every response must
// be a 200 with a complete, untorn prediction, and each reader must
// observe a non-decreasing model version — in-flight requests finish on
// the version they started with, never a mix.
func TestConcurrentPredictHotSwap(t *testing.T) {
	srv, ds, reg := newPredictServer(t)
	i := firstOngoing(t, ds)
	a := &ds.Avails[i]
	url := fmt.Sprintf("%s/predict?avail=%d&date=%s", srv.URL, a.ID, a.PhysicalTime(60).String())

	const swaps = 20
	const readers = 8

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, readers)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := ""
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(url)
				if err != nil {
					errs <- err
					return
				}
				var row struct {
					PredictedDelay        *float64 `json:"predicted_delay"`
					BandLo                *float64 `json:"band_lo"`
					BandHi                *float64 `json:"band_hi"`
					ModelVersion          string   `json:"model_version"`
					PredictionUnavailable bool     `json:"prediction_unavailable"`
				}
				err = json.NewDecoder(resp.Body).Decode(&row)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d during hot swap", resp.StatusCode)
					return
				}
				if row.PredictionUnavailable || row.PredictedDelay == nil || row.BandLo == nil || row.BandHi == nil {
					errs <- fmt.Errorf("torn or unavailable answer during hot swap: %+v", row)
					return
				}
				if *row.BandLo > *row.PredictedDelay || *row.PredictedDelay > *row.BandHi {
					errs <- fmt.Errorf("inconsistent band [%g, %g] around %g from %s",
						*row.BandLo, *row.BandHi, *row.PredictedDelay, row.ModelVersion)
					return
				}
				if row.ModelVersion < last {
					errs <- fmt.Errorf("model version went backwards: %s after %s", row.ModelVersion, last)
					return
				}
				last = row.ModelVersion
			}
		}()
	}

	for n := 2; n <= swaps; n++ {
		publishCloneVersion(t, reg.Dir(), fmt.Sprintf("v%03d", n))
		var rep struct {
			Active  string `json:"active"`
			Swapped bool   `json:"swapped"`
		}
		postReload(t, srv.URL, http.StatusOK, &rep)
		if !rep.Swapped || rep.Active != fmt.Sprintf("v%03d", n) {
			t.Fatalf("swap %d report = %+v", n, rep)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := reg.ActiveVersion(); got != fmt.Sprintf("v%03d", swaps) {
		t.Fatalf("final active = %q", got)
	}
}
