package server

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"domd/internal/faultinject"
	"domd/internal/index"
	"domd/internal/navsim"
	"domd/internal/statusq"
	"domd/internal/wal"
)

// TestChaosKillMidIngest kills the process (simulated: the armed hook
// panics inside the crash window between WAL append and in-memory apply),
// proves the middleware turned the kill into a 500 without taking the
// server down, then "restarts" by reopening the WAL directory and proves
// no acknowledged RCC was lost.
func TestChaosKillMidIngest(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	srv, ds, dc := newDurableServer(t, dir, Options{})
	a := ongoingAvail(t, ds)

	// Three acknowledged ingests before the crash.
	for i := 0; i < 3; i++ {
		status, _, _ := postJSON(t, srv.URL+"/rccs", rccBody(930001+i, a), nil)
		if status != http.StatusCreated {
			t.Fatalf("ingest %d = %d, want 201", i, status)
		}
	}

	// The fourth dies mid-ingest: durable on the log, never applied,
	// never acknowledged.
	faultinject.Arm(statusq.FailDurableApply, func() error { panic("chaos: kill -9 mid-ingest") })
	status, _, _ := postJSON(t, srv.URL+"/rccs", rccBody(930010, a), nil)
	if status != http.StatusInternalServerError {
		t.Fatalf("killed ingest = %d, want 500", status)
	}
	faultinject.Reset()

	// The process survived the panic and keeps serving.
	get(t, srv.URL+"/healthz", http.StatusOK, nil)
	if n := dc.IngestedCount(); n != 3 {
		t.Fatalf("unacknowledged RCC became visible: count = %d, want 3", n)
	}

	// Restart: reopen the same WAL directory.
	if err := dc.Close(); err != nil {
		t.Fatal(err)
	}
	pipe, ext := trainTestPipeline()
	dc2, info, err := statusq.OpenDurable(dir, ds.Avails, ds.RCCs, index.KindAVL,
		statusq.DurableOptions{WAL: wal.Options{Policy: wal.SyncNever}})
	if err != nil {
		t.Fatal(err)
	}
	defer dc2.Close()
	// All three acknowledged records survive. The killed fourth reached
	// the log before the crash, so replay surfaces it too (at-least-once);
	// what matters is that nothing acknowledged is missing.
	if info.Restored < 3 {
		t.Fatalf("restored %d records, want >= 3 (info %+v)", info.Restored, info)
	}

	// Retrying the acknowledged ingests against the restarted server
	// dedups: the acks were durable.
	srv2 := httptest.NewServer(New(pipe, ext, dc2.Catalog, Options{Ingester: dc2}))
	defer srv2.Close()
	for i := 0; i < 3; i++ {
		status, _, out := postJSON(t, srv2.URL+"/rccs", rccBody(930001+i, a), nil)
		if status != http.StatusOK || out["duplicate"] != true {
			t.Fatalf("retry of acked rcc %d = %d %v, want 200 duplicate", 930001+i, status, out)
		}
	}
}

// TestChaosKillMidDeltaApply is the kill-mid-ingest scenario aimed at the
// O(delta) path: the armed hook panics inside Catalog.AddRCC after the WAL
// append but before the history append and the in-place engine fold. The
// panic must unwind without mutating any in-memory state (the warm engine
// keeps serving fresh answers), and a restart must replay the killed record
// — no acknowledged loss, at-least-once for the unacknowledged one.
func TestChaosKillMidDeltaApply(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	srv, ds, dc := newDurableServer(t, dir, Options{})
	a := ongoingAvail(t, ds)
	base := len(ds.RCCsByAvail()[a.ID])
	url := fmt.Sprintf("%s/query?avail=%d&date=%s", srv.URL, a.ID, a.PhysicalTime(60))

	// Warm the engine, then one acknowledged ingest that folds into it in
	// place: still one build, asOf advanced, answer fresh.
	var view struct {
		Stale bool  `json:"stale"`
		AsOf  int64 `json:"asOf"`
	}
	get(t, url, http.StatusOK, &view)
	if status, _, _ := postJSON(t, srv.URL+"/rccs", rccBody(970001, a), nil); status != http.StatusCreated {
		t.Fatalf("warm ingest = %d, want 201", status)
	}
	if n := dc.Catalog.DeltaApplies(); n != 1 {
		t.Fatalf("warm ingest did not delta-apply: applies = %d, want 1", n)
	}
	get(t, url, http.StatusOK, &view)
	if view.Stale || view.AsOf != int64(base+1) {
		t.Fatalf("post-ingest answer stale=%v asOf=%d, want false/%d", view.Stale, view.AsOf, base+1)
	}
	if n := dc.Catalog.EngineBuilds(); n != 1 {
		t.Fatalf("delta-applied ingest triggered a rebuild: builds = %d, want 1", n)
	}

	// The kill: durable on the log, never applied, never acknowledged.
	faultinject.Arm(statusq.FailDeltaApply, func() error { panic("chaos: kill -9 mid delta apply") })
	status, _, _ := postJSON(t, srv.URL+"/rccs", rccBody(970002, a), nil)
	if status != http.StatusInternalServerError {
		t.Fatalf("killed ingest = %d, want 500", status)
	}
	faultinject.Reset()

	// The panic unwound before any in-memory mutation: the killed record is
	// invisible and the same warm engine keeps answering fresh.
	get(t, srv.URL+"/healthz", http.StatusOK, nil)
	if n := dc.IngestedCount(); n != 1 {
		t.Fatalf("unacknowledged RCC became visible: count = %d, want 1", n)
	}
	get(t, url, http.StatusOK, &view)
	if view.Stale || view.AsOf != int64(base+1) {
		t.Fatalf("post-kill answer stale=%v asOf=%d, want false/%d", view.Stale, view.AsOf, base+1)
	}

	// Restart: the acked record and the killed one both reached the log, so
	// replay restores both (at-least-once; nothing acknowledged missing).
	if err := dc.Close(); err != nil {
		t.Fatal(err)
	}
	pipe, ext := trainTestPipeline()
	dc2, info, err := statusq.OpenDurable(dir, ds.Avails, ds.RCCs, index.KindAVL,
		statusq.DurableOptions{WAL: wal.Options{Policy: wal.SyncNever}})
	if err != nil {
		t.Fatal(err)
	}
	defer dc2.Close()
	if info.Restored < 2 {
		t.Fatalf("restored %d records, want >= 2 (info %+v)", info.Restored, info)
	}
	srv2 := httptest.NewServer(New(pipe, ext, dc2.Catalog, Options{Ingester: dc2}))
	defer srv2.Close()
	for _, id := range []int{970001, 970002} {
		status, _, out := postJSON(t, srv2.URL+"/rccs", rccBody(id, a), nil)
		if status != http.StatusOK || out["duplicate"] != true {
			t.Fatalf("retry of rcc %d = %d %v, want 200 duplicate", id, status, out)
		}
	}
}

// TestChaosDiskFaultSheds: an injected WAL write error answers 503 with
// Retry-After, acknowledges nothing, and leaves the process serving; the
// retry after the fault clears succeeds as a fresh (non-duplicate) ingest.
func TestChaosDiskFaultSheds(t *testing.T) {
	defer faultinject.Reset()
	srv, ds, dc := newDurableServer(t, t.TempDir(), Options{})
	a := ongoingAvail(t, ds)

	faultinject.EnableTimes(wal.FailAppendWrite, errors.New("chaos: disk gone"), 1)
	status, hdr, _ := postJSON(t, srv.URL+"/rccs", rccBody(940001, a), nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("faulted ingest = %d, want 503", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
	if n := dc.IngestedCount(); n != 0 {
		t.Fatalf("faulted ingest acknowledged: count = %d", n)
	}
	get(t, srv.URL+"/healthz", http.StatusOK, nil)
	get(t, srv.URL+"/readyz", http.StatusOK, nil)

	// The fault was transient (EnableTimes budget 1): the client retry
	// with the same key lands as a new acknowledgment, not a duplicate.
	status, _, out := postJSON(t, srv.URL+"/rccs", rccBody(940001, a), nil)
	if status != http.StatusCreated || out["duplicate"] != false {
		t.Fatalf("retry after fault = %d %v, want 201 fresh", status, out)
	}
}

// TestChaosEngineBuildFaultServesStale: when the engine rebuild after an
// ingest fails, /query keeps answering 200 from the last good engine with
// "stale": true, and recovers (fresh answer, bumped asOf) once the fault
// clears.
func TestChaosEngineBuildFaultServesStale(t *testing.T) {
	defer faultinject.Reset()
	srv, ds, _ := newDurableServer(t, t.TempDir(), Options{})
	a := ongoingAvail(t, ds)
	base := len(ds.RCCsByAvail()[a.ID])
	url := fmt.Sprintf("%s/query?avail=%d&date=%s", srv.URL, a.ID, a.PhysicalTime(60))

	var view struct {
		Stale bool    `json:"stale"`
		AsOf  int64   `json:"asOf"`
		Final float64 `json:"estimated_delay_days"`
	}
	get(t, url, http.StatusOK, &view)
	if view.Stale || view.AsOf != int64(base) {
		t.Fatalf("baseline stale=%v asOf=%d, want false/%d", view.Stale, view.AsOf, base)
	}

	// The armed delta failpoint forces the ingest down the invalidation
	// path (instead of folding into the live engine in place); the second
	// fault then makes the rebuild fail on the next query.
	faultinject.EnableTimes(statusq.FailDeltaApply, errors.New("chaos: force rebuild path"), 1)
	status, _, _ := postJSON(t, srv.URL+"/rccs", rccBody(950001, a), nil)
	if status != http.StatusCreated {
		t.Fatalf("ingest = %d", status)
	}
	faultinject.Enable(statusq.FailEngineBuild, errors.New("chaos: engine build down"))
	get(t, url, http.StatusOK, &view)
	if !view.Stale || view.AsOf != int64(base) {
		t.Fatalf("degraded answer stale=%v asOf=%d, want true/%d", view.Stale, view.AsOf, base)
	}

	// Fault cleared: the next query rebuilds and the answer is fresh.
	faultinject.Reset()
	get(t, url, http.StatusOK, &view)
	if view.Stale || view.AsOf != int64(base+1) {
		t.Fatalf("recovered answer stale=%v asOf=%d, want false/%d", view.Stale, view.AsOf, base+1)
	}
}

// TestChaosLoadShedding: with one in-flight slot occupied, the limiter
// sheds the next request with 503 + Retry-After while probes bypass the
// limiter, and normal service resumes once the slot frees.
func TestChaosLoadShedding(t *testing.T) {
	defer faultinject.Reset()
	ds, err := navsim.Generate(navsim.Config{NumClosed: 40, NumOngoing: 3, MeanRCCsPerAvail: 40, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	pipe, ext := trainTestPipeline()
	catalog, err := statusq.NewCatalog(ds.Avails, ds.RCCs, index.KindAVL)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(pipe, ext, catalog, Options{MaxInFlight: 1}))
	defer srv.Close()
	a := ongoingAvail(t, ds)

	// Park one request inside the engine build: the armed hook blocks
	// until released, holding the single in-flight slot.
	entered := make(chan struct{})
	release := make(chan struct{})
	faultinject.Arm(statusq.FailEngineBuild, func() error {
		close(entered)
		<-release
		return nil
	})
	done := make(chan int, 1)
	go func() {
		resp, err := http.Get(fmt.Sprintf("%s/query?avail=%d&date=%s", srv.URL, a.ID, a.PhysicalTime(60)))
		if err != nil {
			done <- -1
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	<-entered

	// The slot is taken: the next request is shed.
	resp, err := http.Get(srv.URL + "/avails")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second request = %d, want 503", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 || ra > 60 {
		t.Errorf("shed Retry-After = %q, want an integer in [1, 60]", resp.Header.Get("Retry-After"))
	}
	// Probes bypass the limiter even at capacity.
	get(t, srv.URL+"/healthz", http.StatusOK, nil)
	get(t, srv.URL+"/readyz", http.StatusOK, nil)

	close(release)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("parked request = %d, want 200", code)
	}
	// Capacity restored.
	get(t, srv.URL+"/avails", http.StatusOK, nil)
}

// TestChaosPanicRecovery: a handler panic answers 500 and the process
// keeps serving — including the same route that just panicked.
func TestChaosPanicRecovery(t *testing.T) {
	defer faultinject.Reset()
	srv, ds, _ := newDurableServer(t, t.TempDir(), Options{})
	a := ongoingAvail(t, ds)

	faultinject.Arm(statusq.FailDurableApply, func() error { panic("chaos: handler panic") })
	status, _, out := postJSON(t, srv.URL+"/rccs", rccBody(960001, a), nil)
	if status != http.StatusInternalServerError {
		t.Fatalf("panicking ingest = %d %v, want 500", status, out)
	}
	if out["error"] == "" {
		t.Error("500 without JSON error body")
	}
	faultinject.Reset()

	// Same route, same record: the server recovered and the retry lands.
	status, _, _ = postJSON(t, srv.URL+"/rccs", rccBody(960001, a), nil)
	if status != http.StatusCreated {
		t.Fatalf("retry after panic = %d, want 201", status)
	}
	get(t, srv.URL+"/query?avail="+fmt.Sprint(a.ID)+"&date="+a.PhysicalTime(60).String(), http.StatusOK, nil)
}
