package server

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"testing"

	"domd/internal/faultinject"
	"domd/internal/index"
	"domd/internal/navsim"
	"domd/internal/statusq"
	"domd/internal/wal"
)

// newReplShardedServer serves a fleet through a 2-shard tier whose
// shards each journal to a 2-replica WAL set (quorum 2) — the wiring
// `domd serve -shards 2 -repl 2` uses.
func newReplShardedServer(t *testing.T, root string) (*httptest.Server, *navsim.Dataset, *statusq.ShardedCatalog) {
	t.Helper()
	ds, err := navsim.Generate(navsim.Config{NumClosed: 40, NumOngoing: 8, MeanRCCsPerAvail: 40, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	pipe, ext := trainTestPipeline()
	sc, _, err := statusq.OpenSharded(root, 2, ds.Avails, ds.RCCs, index.KindAVL,
		statusq.DurableOptions{Replicas: 2, WAL: wal.Options{Policy: wal.SyncNever}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sc.Close() })
	srv := httptest.NewServer(New(pipe, ext, sc, Options{}))
	t.Cleanup(srv.Close)
	return srv, ds, sc
}

// shardReplicaFailpoints returns the failpoint names for every WAL
// replica of the given shard.
func shardReplicaFailpoints(sc *statusq.ShardedCatalog, shard, replicas int) []string {
	fps := make([]string, replicas)
	for n := range fps {
		fps[n] = wal.ReplicaFailpoint(filepath.Join(sc.ShardDir(shard), fmt.Sprintf("replica-%02d", n)))
	}
	return fps
}

// TestChaosReplBothReplicasDownServesStale is the HTTP-level acceptance
// proof for the all-replicas-failed shard: ingests to it answer 503
// without acknowledging, its reads keep answering marked stale while
// other shards stay fresh, /fleet annotates its rows degraded, /readyz
// drops to 503 with a machine-readable per-shard body — and when the
// fault clears, breaker probes restore it to ready without a restart.
func TestChaosReplBothReplicasDownServesStale(t *testing.T) {
	defer faultinject.Reset()
	srv, ds, sc := newReplShardedServer(t, t.TempDir())
	victim, other := crossShardOngoing(t, ds, sc)
	vShard := sc.ShardOf(victim.ID)

	// Healthy replicated tier: 200 with one healthy, promotable row per
	// shard.
	var ready readyView
	get(t, srv.URL+"/readyz", http.StatusOK, &ready)
	if ready.Status != "ready" || len(ready.Shards) != 2 {
		t.Fatalf("healthy readyz = %+v, want status ready with 2 shard rows", ready)
	}
	for _, row := range ready.Shards {
		if row.State != "healthy" || row.Replicas != 2 || row.Live != 2 || !row.Promotable {
			t.Fatalf("healthy readyz shard row = %+v", row)
		}
	}

	// Warm the victim's engine so the failed shard has a last-good
	// engine to serve stale from.
	date := victim.PhysicalTime(50)
	var fresh queryView
	get(t, fmt.Sprintf("%s/query?avail=%d&date=%s", srv.URL, victim.ID, date), http.StatusOK, &fresh)
	if fresh.Stale {
		t.Fatalf("warm query already stale: %+v", fresh)
	}

	// Take down every replica of the victim shard: quorum is gone, so
	// nothing can be acknowledged there.
	for _, fp := range shardReplicaFailpoints(sc, vShard, 2) {
		faultinject.Enable(fp, errors.New("chaos: replica disk down"))
	}
	for i := 0; i <= statusq.FailAfterFailures; i++ {
		status, hdr, _ := postJSON(t, srv.URL+"/rccs", rccBody(970001+i, victim), nil)
		if status != http.StatusServiceUnavailable {
			t.Fatalf("quorum-lost ingest %d = %d, want 503", i, status)
		}
		if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra < 1 || ra > 60 {
			t.Fatalf("quorum-lost ingest Retry-After = %q, want an integer in [1, 60]", hdr.Get("Retry-After"))
		}
	}
	if n := sc.IngestedCount(); n != 0 {
		t.Fatalf("unacknowledged ingests became visible: count = %d", n)
	}

	// The failed shard keeps answering reads, truthfully marked stale;
	// the other shard is untouched.
	var staleView queryView
	get(t, fmt.Sprintf("%s/query?avail=%d&date=%s", srv.URL, victim.ID, date), http.StatusOK, &staleView)
	if !staleView.Stale {
		t.Fatalf("failed-shard query served stale=false: %+v", staleView)
	}
	var otherView queryView
	get(t, fmt.Sprintf("%s/query?avail=%d&date=%s", srv.URL, other.ID, other.PhysicalTime(50)), http.StatusOK, &otherView)
	if otherView.Stale {
		t.Fatalf("healthy-shard query served stale under another shard's fault: %+v", otherView)
	}

	// /fleet flags exactly the failed shard's rows as degraded.
	for _, row := range fetchFleet(t, srv.URL, fleetDate(ds)) {
		if want := sc.ShardOf(row.AvailID) == vShard; row.Degraded != want {
			t.Fatalf("fleet row %d (shard %d) degraded=%v, want %v",
				row.AvailID, sc.ShardOf(row.AvailID), row.Degraded, want)
		}
	}

	// /readyz: 503 with the victim row failed and unpromotable, the
	// other row still healthy.
	var down readyView
	get(t, srv.URL+"/readyz", http.StatusServiceUnavailable, &down)
	if down.Status != "unready" || len(down.Shards) != 2 {
		t.Fatalf("failed readyz = %+v, want status unready with 2 shard rows", down)
	}
	for _, row := range down.Shards {
		if row.Shard == vShard {
			if row.State != "failed" || row.Promotable {
				t.Fatalf("failed shard readyz row = %+v, want failed and unpromotable", row)
			}
		} else if row.State != "healthy" || !row.Promotable {
			t.Fatalf("unaffected shard readyz row = %+v, want healthy", row)
		}
	}

	// Fault cleared: the breaker admits probes, one succeeds and revives
	// the replica set inline, and readiness returns without a restart.
	faultinject.Reset()
	recovered := false
	for i := 0; i < 64 && !recovered; i++ {
		if status, _, _ := postJSON(t, srv.URL+"/rccs", rccBody(971001+i, victim), nil); status == http.StatusCreated {
			recovered = true
		}
	}
	if !recovered {
		t.Fatal("shard never recovered after the fault cleared")
	}
	var restored readyView
	get(t, srv.URL+"/readyz", http.StatusOK, &restored)
	if restored.Status != "ready" {
		t.Fatalf("post-recovery readyz = %+v, want ready", restored)
	}
	var freshAgain queryView
	get(t, fmt.Sprintf("%s/query?avail=%d&date=%s", srv.URL, victim.ID, date), http.StatusOK, &freshAgain)
	if freshAgain.Stale {
		t.Fatalf("post-recovery query still stale: %+v", freshAgain)
	}
}
