package server

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"domd/internal/domain"
)

// TestQueryUsesCachedEngine pins the serving-path fix: repeated /query
// requests for the same avail must hit the catalog's cached engine instead
// of re-indexing the RCC history per request (the old QueryService.Query
// behavior). The catalog's engine-build counter is the observable.
func TestQueryUsesCachedEngine(t *testing.T) {
	srv, ds, catalog := newTestServer(t)
	var target *domain.Avail
	for i := range ds.Avails {
		if ds.Avails[i].Status == domain.StatusOngoing {
			target = &ds.Avails[i]
			break
		}
	}
	url := fmt.Sprintf("%s/query?avail=%d&date=%s", srv.URL, target.ID, target.PhysicalTime(50))
	before := catalog.EngineBuilds()
	for i := 0; i < 12; i++ {
		get(t, url, http.StatusOK, nil)
	}
	if builds := catalog.EngineBuilds() - before; builds != 1 {
		t.Errorf("12 queries to one avail built %d engines, want 1 (cached)", builds)
	}
}

// TestConcurrentServingStress is the -race gate for the whole serving path:
// a mix of /query, /fleet, /avails, and catalog.AddRCC goroutines hammering
// one server. On the pre-fix code this panics (concurrent map writes in
// Catalog) or trips the race detector (lazy index re-sorts, unguarded
// engine cache); it must run clean now. It also bounds engine builds:
// single-flight construction means at most one build per (avail ×
// invalidation), never one per request.
func TestConcurrentServingStress(t *testing.T) {
	srv, ds, catalog := newTestServer(t)
	var ongoing []*domain.Avail
	for i := range ds.Avails {
		if ds.Avails[i].Status == domain.StatusOngoing {
			ongoing = append(ongoing, &ds.Avails[i])
		}
	}
	if len(ongoing) == 0 {
		t.Fatal("fixture has no ongoing avails")
	}

	iters := 40
	if testing.Short() {
		iters = 8
	}
	client := srv.Client()
	var (
		wg       sync.WaitGroup
		adds     atomic.Int64
		rccID    atomic.Int64
		failures atomic.Int64
	)
	rccID.Store(10_000_000) // above every generated RCC id
	baseline := catalog.EngineBuilds()

	fetch := func(url string, want int) {
		resp, err := client.Get(url)
		if err != nil {
			failures.Add(1)
			t.Errorf("GET %s: %v", url, err)
			return
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			failures.Add(1)
			t.Errorf("GET %s = %d, want %d", url, resp.StatusCode, want)
		}
	}

	// Query workers: every request a cache hit or a single-flight rebuild.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				a := ongoing[(w+i)%len(ongoing)]
				ts := 30 + 10*float64((w+i)%4)
				fetch(fmt.Sprintf("%s/query?avail=%d&date=%s", srv.URL, a.ID, a.PhysicalTime(ts)), http.StatusOK)
			}
		}(w)
	}
	// Fleet workers: bounded fan-out over every ongoing avail.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters/2; i++ {
				a := ongoing[(w+i)%len(ongoing)]
				fetch(srv.URL+"/fleet?date="+a.PhysicalTime(50).String(), http.StatusOK)
			}
		}(w)
	}
	// Catalog readers: list endpoints race the ingestion below.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			fetch(srv.URL+"/avails", http.StatusOK)
		}
	}()
	// Ingestion workers: stream RCCs in, invalidating cached engines.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters/2; i++ {
				a := ongoing[(w+i)%len(ongoing)]
				r := domain.RCC{
					ID:      int(rccID.Add(1)),
					AvailID: a.ID,
					Type:    domain.Growth,
					SWLIN:   43411001,
					Created: a.ActStart + 1,
					Settled: a.ActStart + 25,
					Amount:  1000,
				}
				if err := catalog.AddRCC(r); err != nil {
					t.Errorf("AddRCC: %v", err)
					return
				}
				adds.Add(1)
			}
		}(w)
	}
	wg.Wait()

	if failures.Load() > 0 {
		t.Fatalf("%d requests failed under concurrency", failures.Load())
	}
	if adds.Load() == 0 {
		t.Fatal("no RCCs ingested; the stress mix did not exercise invalidation")
	}
	// Builds are bounded by first-use plus invalidations — if queries built
	// engines per request this would be on the order of total requests.
	builds := catalog.EngineBuilds() - baseline
	limit := int64(len(ongoing)) + adds.Load()
	if builds > limit {
		t.Errorf("engine builds = %d, want <= %d (single-flight + invalidation bound)", builds, limit)
	}
	if builds == 0 {
		t.Error("no engines built; the stress mix did not exercise the cache")
	}
}
