package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"domd/internal/domain"
	"domd/internal/faultinject"
	"domd/internal/index"
	"domd/internal/navsim"
	"domd/internal/statusq"
	"domd/internal/wal"
)

// newShardedServer serves a fleet with several ongoing avails through a
// 4-shard ShardedCatalog rooted at root. The sharded catalog is passed
// straight to New as both the query surface and (implicitly) the
// Ingester — the same wiring `domd serve -shards 4` uses.
func newShardedServer(t *testing.T, root string) (*httptest.Server, *navsim.Dataset, *statusq.ShardedCatalog) {
	t.Helper()
	ds, err := navsim.Generate(navsim.Config{NumClosed: 40, NumOngoing: 8, MeanRCCsPerAvail: 40, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	pipe, ext := trainTestPipeline()
	sc, _, err := statusq.OpenSharded(root, 4, ds.Avails, ds.RCCs, index.KindAVL,
		statusq.DurableOptions{WAL: wal.Options{Policy: wal.SyncNever}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sc.Close() })
	srv := httptest.NewServer(New(pipe, ext, sc, Options{}))
	t.Cleanup(srv.Close)
	return srv, ds, sc
}

// crossShardOngoing picks two ongoing avails owned by different shards
// (skipping the test if the fixture fleet all landed on one shard).
func crossShardOngoing(t *testing.T, ds *navsim.Dataset, sc *statusq.ShardedCatalog) (domain.Avail, domain.Avail) {
	t.Helper()
	var ongoing []domain.Avail
	for i := range ds.Avails {
		if ds.Avails[i].Status == domain.StatusOngoing {
			ongoing = append(ongoing, ds.Avails[i])
		}
	}
	for _, b := range ongoing[1:] {
		if sc.ShardOf(b.ID) != sc.ShardOf(ongoing[0].ID) {
			return ongoing[0], b
		}
	}
	t.Skip("fixture fleet's ongoing avails landed on one shard")
	return domain.Avail{}, domain.Avail{}
}

// fleetDate returns a date at which every ongoing avail in the fleet
// has started executing, so a /fleet sweep yields an answer row (not a
// not-yet-started error) for each of them.
func fleetDate(ds *navsim.Dataset) domain.Day {
	var date domain.Day
	for i := range ds.Avails {
		if ds.Avails[i].Status == domain.StatusOngoing {
			if d := ds.Avails[i].PhysicalTime(50); d > date {
				date = d
			}
		}
	}
	return date
}

// fetchFleet gets /fleet at the given date and decodes the rows.
func fetchFleet(t *testing.T, base string, date domain.Day) []fleetRow {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/fleet?date=%s", base, date))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /fleet = %d, want 200", resp.StatusCode)
	}
	var rows []fleetRow
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestShardedFleetMergeDeterminism pins the cross-shard fleet contract:
// the scatter-gather over N shards renders every ongoing avail exactly
// once, in ascending id order, identically on repeated calls.
func TestShardedFleetMergeDeterminism(t *testing.T) {
	srv, ds, sc := newShardedServer(t, t.TempDir())
	a, _ := crossShardOngoing(t, ds, sc)
	date := a.PhysicalTime(50)

	first := fetchFleet(t, srv.URL, date)
	want := sc.OngoingIDs()
	if len(first) != len(want) {
		t.Fatalf("fleet rendered %d rows, want %d ongoing avails", len(first), len(want))
	}
	for i, row := range first {
		if row.AvailID != want[i] {
			t.Fatalf("fleet row %d is avail %d, want %d (ascending merge across shards)", i, row.AvailID, want[i])
		}
	}
	for rep := 0; rep < 3; rep++ {
		again := fetchFleet(t, srv.URL, date)
		if len(again) != len(first) {
			t.Fatalf("repeat %d rendered %d rows, want %d", rep, len(again), len(first))
		}
		for i := range again {
			if again[i].AvailID != first[i].AvailID {
				t.Fatalf("repeat %d row %d is avail %d, want %d: fleet order is not deterministic", rep, i, again[i].AvailID, first[i].AvailID)
			}
		}
	}
}

// TestChaosShardedFleetShardIsolation drives one shard into engine-build
// failure and proves the blast radius stays inside it: the victim avail
// is served stale from its shard's last-good engine with a truthful
// asOf, every other shard's avails stay fresh, and no avail is dropped
// or reordered. Clearing the fault restores fresh answers that include
// the ingested record.
func TestChaosShardedFleetShardIsolation(t *testing.T) {
	defer faultinject.Reset()
	srv, ds, sc := newShardedServer(t, t.TempDir())
	victim, other := crossShardOngoing(t, ds, sc)
	date := fleetDate(ds)

	// Warm every shard's engines and record the victim's fresh asOf.
	warm := fetchFleet(t, srv.URL, date)
	baseAsOf := map[int]int64{}
	for _, row := range warm {
		if row.Error != "" || row.Result == nil {
			t.Fatalf("warm fleet row %d errored: %s", row.AvailID, row.Error)
		}
		if row.Result.Stale {
			t.Fatalf("warm fleet row %d already stale", row.AvailID)
		}
		baseAsOf[row.AvailID] = row.Result.AsOf
	}

	// Force the victim's next ingest to invalidate its engine (delta
	// fold refused once), then make every rebuild fail: the victim's
	// shard now cannot produce a fresh engine for that avail.
	faultinject.EnableTimes(statusq.FailDeltaApply, errors.New("chaos: delta refused"), 1)
	if status, _, out := postJSON(t, srv.URL+"/rccs", rccBody(980001, victim), nil); status != http.StatusCreated {
		t.Fatalf("victim ingest = %d %v, want 201", status, out)
	}
	faultinject.Enable(statusq.FailEngineBuild, errors.New("chaos: shard build down"))

	degraded := fetchFleet(t, srv.URL, date)
	if len(degraded) != len(warm) {
		t.Fatalf("degraded fleet rendered %d rows, want %d: a shard fault dropped avails", len(degraded), len(warm))
	}
	for i, row := range degraded {
		if row.AvailID != warm[i].AvailID {
			t.Fatalf("degraded fleet row %d is avail %d, want %d: shard fault reordered output", i, row.AvailID, warm[i].AvailID)
		}
		if row.Result == nil {
			t.Fatalf("degraded fleet row %d has no result: %s", row.AvailID, row.Error)
		}
		if row.AvailID == victim.ID {
			if !row.Result.Stale {
				t.Fatalf("victim avail %d served stale=false under a build fault", row.AvailID)
			}
			if row.Result.AsOf != baseAsOf[row.AvailID] {
				t.Fatalf("victim stale asOf = %d, want pre-ingest %d", row.Result.AsOf, baseAsOf[row.AvailID])
			}
			continue
		}
		// Every avail on every other shard — and the victim's shard
		// siblings with settled engines — stays fresh.
		if row.Result.Stale {
			t.Fatalf("avail %d (shard %d) served stale; only the victim (shard %d) should degrade",
				row.AvailID, sc.ShardOf(row.AvailID), sc.ShardOf(victim.ID))
		}
		if row.Result.AsOf != baseAsOf[row.AvailID] {
			t.Fatalf("avail %d asOf drifted to %d under another shard's fault", row.AvailID, row.Result.AsOf)
		}
	}
	if sc.ShardOf(other.ID) == sc.ShardOf(victim.ID) {
		t.Fatalf("test fixture broken: %d and %d on one shard", other.ID, victim.ID)
	}

	// Fault cleared: the victim rebuilds over the extended history and
	// the fleet is fully fresh again, now including the ingested record.
	faultinject.Reset()
	recovered := fetchFleet(t, srv.URL, date)
	for _, row := range recovered {
		if row.Result == nil || row.Result.Stale {
			t.Fatalf("post-recovery row %d stale or missing", row.AvailID)
		}
		if row.AvailID == victim.ID && row.Result.AsOf != baseAsOf[row.AvailID]+1 {
			t.Fatalf("recovered victim asOf = %d, want %d (ingested record folded in)", row.Result.AsOf, baseAsOf[row.AvailID]+1)
		}
	}
}

// TestChaosShardedKillMidIngest runs the kill-mid-ingest crash proof
// against two different shards of a 4-shard tier: each shard's WAL
// independently surfaces its durable-but-unapplied record on restart,
// acknowledged records dedup on retry, and per-shard restore reports
// account for every record.
func TestChaosShardedKillMidIngest(t *testing.T) {
	defer faultinject.Reset()
	root := t.TempDir()
	srv, ds, sc := newShardedServer(t, root)
	a, b := crossShardOngoing(t, ds, sc)

	// One acknowledged ingest per shard.
	for i, av := range []domain.Avail{a, b} {
		if status, _, _ := postJSON(t, srv.URL+"/rccs", rccBody(990001+i, av), nil); status != http.StatusCreated {
			t.Fatalf("acked ingest on shard %d = %d, want 201", sc.ShardOf(av.ID), status)
		}
	}
	// Then a kill mid-ingest on each shard: durable, unapplied, unacked.
	for i, av := range []domain.Avail{a, b} {
		faultinject.Arm(statusq.FailDurableApply, func() error { panic("chaos: kill -9 mid-ingest") })
		if status, _, _ := postJSON(t, srv.URL+"/rccs", rccBody(990011+i, av), nil); status != http.StatusInternalServerError {
			t.Fatalf("killed ingest on shard %d = %d, want 500", sc.ShardOf(av.ID), status)
		}
		faultinject.Reset()
	}
	if n := sc.IngestedCount(); n != 2 {
		t.Fatalf("unacknowledged RCCs became visible: count = %d, want 2", n)
	}

	// Restart the whole tier from the same root.
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
	pipe, ext := trainTestPipeline()
	sc2, info, err := statusq.OpenSharded(root, 4, ds.Avails, ds.RCCs, index.KindAVL,
		statusq.DurableOptions{WAL: wal.Options{Policy: wal.SyncNever}})
	if err != nil {
		t.Fatal(err)
	}
	defer sc2.Close()
	if tot := info.Totals(); tot.Restored < 2 {
		t.Fatalf("restored %d records tier-wide, want >= 2 (info %+v)", tot.Restored, info)
	}
	for _, av := range []domain.Avail{a, b} {
		sh := info.Shards[sc2.ShardOf(av.ID)]
		if sh.Info.Restored < 1 {
			t.Fatalf("shard %d restored %d records, want >= 1 (its acked ingest)", sh.Shard, sh.Info.Restored)
		}
	}

	// Retries of the acknowledged records dedup on their own shards.
	srv2 := httptest.NewServer(New(pipe, ext, sc2, Options{}))
	defer srv2.Close()
	for i, av := range []domain.Avail{a, b} {
		status, _, out := postJSON(t, srv2.URL+"/rccs", rccBody(990001+i, av), nil)
		if status != http.StatusOK || out["duplicate"] != true {
			t.Fatalf("retry of acked rcc on shard %d = %d %v, want 200 duplicate", sc2.ShardOf(av.ID), status, out)
		}
	}
}

// TestShardedQueryRouting smoke-tests the point-lookup surface over a
// sharded tier: /query and /query/batch answer for avails on different
// shards, and both match each other bitwise per avail.
func TestShardedQueryRouting(t *testing.T) {
	srv, ds, sc := newShardedServer(t, t.TempDir())
	a, b := crossShardOngoing(t, ds, sc)

	var qa, qb queryView
	get(t, fmt.Sprintf("%s/query?avail=%d&date=%s", srv.URL, a.ID, a.PhysicalTime(50)), http.StatusOK, &qa)
	get(t, fmt.Sprintf("%s/query?avail=%d&date=%s", srv.URL, b.ID, b.PhysicalTime(50)), http.StatusOK, &qb)

	body := fmt.Sprintf(`{"queries":[{"avail":%d,"date":%q},{"avail":%d,"date":%q}]}`,
		a.ID, a.PhysicalTime(50).String(), b.ID, b.PhysicalTime(50).String())
	resp, err := http.Post(srv.URL+"/query/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rows []batchRow
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("batch returned %d rows, want 2", len(rows))
	}
	for i, want := range []queryView{qa, qb} {
		got := rows[i].Result
		if got == nil {
			t.Fatalf("batch row %d errored: %s", i, rows[i].Error)
		}
		if got.FinalDays != want.FinalDays || got.AvailID != want.AvailID {
			t.Fatalf("batch row %d = %+v, want single-query answer %+v", i, got, want)
		}
	}
}
