package server

import (
	"math"
	"strconv"
	"sync"
	"testing"
)

// seedEWMA stamps the server's latency EWMA directly, bypassing the
// smoothing, so table cases can pin the formula against exact means.
func seedEWMA(s *Server, mean float64) {
	if mean != 0 {
		s.latEWMA.Store(math.Float64bits(mean))
	}
}

// TestRetryAfterBounds pins the load-derived Retry-After formula:
// ceil(mean latency × in-flight depth / capacity), clamped to [1, 60].
func TestRetryAfterBounds(t *testing.T) {
	cases := []struct {
		name     string
		mean     float64 // seeded EWMA seconds; 0 leaves it unseeded
		capacity int     // limiter capacity; 0 disables the limiter
		depth    int     // requests parked in flight
		want     string
	}{
		{"unseeded idle server", 0, 8, 0, "1"},
		{"no limiter configured", 2.5, 0, 0, "1"},
		{"fast idle server", 0.5, 8, 0, "1"},
		{"half-full backlog drains fast", 2.0, 4, 2, "1"},
		{"saturated", 2.0, 4, 4, "2"},
		{"saturated with slow requests", 10, 2, 2, "10"},
		{"fractional backlog rounds up", 1.5, 4, 3, "2"},
		{"hint capped at a minute", 120, 4, 4, "60"},
		{"capacity-one limiter", 3, 1, 1, "3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := &Server{}
			if tc.capacity > 0 {
				s.inflight = make(chan struct{}, tc.capacity)
				for i := 0; i < tc.depth; i++ {
					s.inflight <- struct{}{}
				}
			}
			seedEWMA(s, tc.mean)
			if got := s.retryAfterSeconds(); got != tc.want {
				t.Fatalf("retryAfterSeconds(mean=%v, depth=%d/%d) = %q, want %q",
					tc.mean, tc.depth, tc.capacity, got, tc.want)
			}
		})
	}
}

// TestNoteLatencySeedsAndSmooths pins the EWMA fold: the first sample
// seeds the average verbatim, later samples blend in with alpha 1/8.
func TestNoteLatencySeedsAndSmooths(t *testing.T) {
	s := &Server{}
	s.noteLatency(4.0)
	if got := math.Float64frombits(s.latEWMA.Load()); got != 4.0 {
		t.Fatalf("first sample seeded EWMA to %v, want 4.0", got)
	}
	s.noteLatency(12.0)
	want := 4.0 + (12.0-4.0)/8
	if got := math.Float64frombits(s.latEWMA.Load()); got != want {
		t.Fatalf("EWMA after second sample = %v, want %v", got, want)
	}
}

// TestConcurrentRetryAfterEWMA hammers the lock-free latency EWMA from
// writer goroutines while readers derive Retry-After hints, proving (under
// -race) the CAS loop is sound and every observed hint stays in bounds.
func TestConcurrentRetryAfterEWMA(t *testing.T) {
	s := &Server{inflight: make(chan struct{}, 4)}
	for i := 0; i < 4; i++ {
		s.inflight <- struct{}{} // fully saturated: hint tracks the mean
	}
	const writers, readers, iters = 8, 4, 500
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s.noteLatency(float64(1 + (w+i)%5)) // samples in [1, 5]
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				v, err := strconv.Atoi(s.retryAfterSeconds())
				if err != nil || v < 1 || v > maxRetryAfterSeconds {
					t.Errorf("concurrent retryAfterSeconds = %d (err %v), want [1, %d]", v, err, maxRetryAfterSeconds)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Every sample was in [1, 5], so the converged mean — and therefore
	// the saturated hint ceil(mean) — must be too.
	if mean := math.Float64frombits(s.latEWMA.Load()); mean < 1 || mean > 5 {
		t.Fatalf("EWMA converged to %v, outside the sample range [1, 5]", mean)
	}
	if v, err := strconv.Atoi(s.retryAfterSeconds()); err != nil || v < 1 || v > 5 {
		t.Fatalf("final saturated hint = %d (err %v), want [1, 5]", v, err)
	}
}
