package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"domd/internal/domain"
	"domd/internal/index"
	"domd/internal/navsim"
	"domd/internal/statusq"
	"domd/internal/wal"
)

// newDurableServer serves the standard test fleet through a WAL-backed
// DurableCatalog rooted at dir, so tests can "restart" by reopening dir.
func newDurableServer(t *testing.T, dir string, opts Options) (*httptest.Server, *navsim.Dataset, *statusq.DurableCatalog) {
	t.Helper()
	ds, err := navsim.Generate(navsim.Config{NumClosed: 40, NumOngoing: 3, MeanRCCsPerAvail: 40, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	pipe, ext := trainTestPipeline()
	dc, _, err := statusq.OpenDurable(dir, ds.Avails, ds.RCCs, index.KindAVL,
		statusq.DurableOptions{WAL: wal.Options{Policy: wal.SyncNever}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dc.Close() })
	opts.Ingester = dc
	srv := httptest.NewServer(New(pipe, ext, dc.Catalog, opts))
	t.Cleanup(srv.Close)
	return srv, ds, dc
}

// ongoingAvail picks one ongoing avail from the dataset.
func ongoingAvail(t *testing.T, ds *navsim.Dataset) domain.Avail {
	t.Helper()
	for i := range ds.Avails {
		if ds.Avails[i].Status == domain.StatusOngoing {
			return ds.Avails[i]
		}
	}
	t.Fatal("dataset has no ongoing avail")
	return domain.Avail{}
}

// rccBody builds a well-formed POST /rccs payload for the given avail.
func rccBody(id int, a domain.Avail) string {
	created := a.PhysicalTime(30)
	settled := a.PhysicalTime(50)
	return fmt.Sprintf(
		`{"id":%d,"avail_id":%d,"type":"G","swlin":"434-11-001","created":%q,"settled":%q,"amount":1234.5}`,
		id, a.ID, created.String(), settled.String())
}

// postJSON posts body to url with optional headers and decodes the reply.
func postJSON(t *testing.T, url, body string, hdr map[string]string) (int, http.Header, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("POST %s: decode reply: %v", url, err)
	}
	return resp.StatusCode, resp.Header, out
}

func TestIngestHappyPathAndIdempotency(t *testing.T) {
	srv, ds, dc := newDurableServer(t, t.TempDir(), Options{})
	a := ongoingAvail(t, ds)
	body := rccBody(900001, a)

	status, _, out := postJSON(t, srv.URL+"/rccs", body, nil)
	if status != http.StatusCreated {
		t.Fatalf("first ingest = %d (%v), want 201", status, out)
	}
	if out["duplicate"] != false || out["idempotency_key"] != "rcc:900001" {
		t.Fatalf("ack = %v", out)
	}
	if n := dc.IngestedCount(); n != 1 {
		t.Fatalf("ingested count = %d, want 1", n)
	}

	// Same record, same (default) key: acknowledged as a duplicate, not
	// re-applied.
	status, _, out = postJSON(t, srv.URL+"/rccs", body, nil)
	if status != http.StatusOK || out["duplicate"] != true {
		t.Fatalf("replayed ingest = %d %v, want 200 duplicate", status, out)
	}
	if n := dc.IngestedCount(); n != 1 {
		t.Fatalf("count after duplicate = %d, want 1", n)
	}

	// An explicit distinct Idempotency-Key is a new ingest.
	status, _, _ = postJSON(t, srv.URL+"/rccs", rccBody(900002, a),
		map[string]string{"Idempotency-Key": "client-retry-42"})
	if status != http.StatusCreated {
		t.Fatalf("keyed ingest = %d, want 201", status)
	}
	status, _, out = postJSON(t, srv.URL+"/rccs", rccBody(900002, a),
		map[string]string{"Idempotency-Key": "client-retry-42"})
	if status != http.StatusOK || out["duplicate"] != true {
		t.Fatalf("keyed replay = %d %v, want 200 duplicate", status, out)
	}
}

// TestIngestValidation pins the endpoint's status contract for bad input:
// 400 malformed body, 422 semantically invalid fields, 404 unknown avail.
func TestIngestValidation(t *testing.T) {
	srv, ds, dc := newDurableServer(t, t.TempDir(), Options{})
	a := ongoingAvail(t, ds)
	created, settled := a.PhysicalTime(30), a.PhysicalTime(50)
	mk := func(field, val string) string {
		m := map[string]any{
			"id": 900100, "avail_id": a.ID, "type": "G", "swlin": "434-11-001",
			"created": created.String(), "settled": settled.String(), "amount": 10.0,
		}
		var v any = val
		if err := json.Unmarshal([]byte(val), &v); err != nil {
			v = val
		}
		m[field] = v
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	cases := []struct {
		name, body string
		want       int
	}{
		{"malformed json", `{"id": 1,`, http.StatusBadRequest},
		{"unknown field", mk("bogus_field", `1`), http.StatusBadRequest},
		{"wrong field type", mk("id", `"one"`), http.StatusBadRequest},
		{"zero id", mk("id", `0`), http.StatusUnprocessableEntity},
		{"negative id", mk("id", `-3`), http.StatusUnprocessableEntity},
		{"bad type", mk("type", `"XX"`), http.StatusUnprocessableEntity},
		{"bad swlin chars", mk("swlin", `"43x-11-001"`), http.StatusUnprocessableEntity},
		{"short swlin", mk("swlin", `"434-11"`), http.StatusUnprocessableEntity},
		{"bad created", mk("created", `"not-a-date"`), http.StatusUnprocessableEntity},
		{"bad settled", mk("settled", `"2024-13-99"`), http.StatusUnprocessableEntity},
		{"settled before created", mk("settled", fmt.Sprintf("%q", (created-10).String())), http.StatusUnprocessableEntity},
		{"negative amount", mk("amount", `-5`), http.StatusUnprocessableEntity},
		{"unknown avail", mk("avail_id", `999999`), http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, out := postJSON(t, srv.URL+"/rccs", tc.body, nil)
			if status != tc.want {
				t.Errorf("status = %d (%v), want %d", status, out, tc.want)
			}
			if out["error"] == "" {
				t.Error("error body missing")
			}
		})
	}
	// None of the rejected ingests may have been acknowledged or logged.
	if n := dc.IngestedCount(); n != 0 {
		t.Fatalf("rejected ingests leaked: count = %d", n)
	}
}

func TestIngestBodyCap(t *testing.T) {
	srv, ds, _ := newDurableServer(t, t.TempDir(), Options{MaxBodyBytes: 128})
	a := ongoingAvail(t, ds)
	big := strings.Replace(rccBody(900200, a), `"amount":1234.5`,
		`"amount":1234.5,"pad":"`+strings.Repeat("x", 4096)+`"`, 1)
	status, _, _ := postJSON(t, srv.URL+"/rccs", big, nil)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413", status)
	}
	// A normal-sized record still fits under the same cap.
	status, _, _ = postJSON(t, srv.URL+"/rccs", rccBody(900201, a), nil)
	if status != http.StatusCreated {
		t.Fatalf("normal body under cap = %d, want 201", status)
	}
}

// TestIngestNonDurableFallback: without a configured Ingester the endpoint
// still works (straight into the in-memory catalog) with the same
// idempotency and status semantics.
func TestIngestNonDurableFallback(t *testing.T) {
	srv, ds, catalog := newTestServer(t)
	a := ongoingAvail(t, ds)
	body := rccBody(910001, a)
	status, _, _ := postJSON(t, srv.URL+"/rccs", body, nil)
	if status != http.StatusCreated {
		t.Fatalf("ingest = %d, want 201", status)
	}
	status, _, out := postJSON(t, srv.URL+"/rccs", body, nil)
	if status != http.StatusOK || out["duplicate"] != true {
		t.Fatalf("replay = %d %v, want 200 duplicate", status, out)
	}
	status, _, _ = postJSON(t, srv.URL+"/rccs",
		strings.Replace(body, fmt.Sprintf(`"avail_id":%d`, a.ID), `"avail_id":999999`, 1), nil)
	if status != http.StatusNotFound {
		t.Fatalf("unknown avail = %d, want 404", status)
	}
	_ = catalog
}

func TestReadyz(t *testing.T) {
	srv, _, dc := newDurableServer(t, t.TempDir(), Options{})
	var body map[string]string
	get(t, srv.URL+"/readyz", http.StatusOK, &body)
	if body["status"] != "ready" {
		t.Fatalf("readyz = %v", body)
	}
	// Closing the WAL flips readiness; liveness is untouched.
	if err := dc.Close(); err != nil {
		t.Fatal(err)
	}
	get(t, srv.URL+"/readyz", http.StatusServiceUnavailable, new(map[string]string))
	get(t, srv.URL+"/healthz", http.StatusOK, nil)
	// Ingestion now sheds with 503 rather than silently dropping.
	status, hdr, _ := postJSON(t, srv.URL+"/rccs", `{"id":1}`, nil)
	if status != http.StatusUnprocessableEntity && status != http.StatusServiceUnavailable {
		t.Fatalf("ingest on closed catalog = %d", status)
	}
	_ = hdr

	// A server without a WAL is always ready.
	srv2, _, _ := newTestServer(t)
	get(t, srv2.URL+"/readyz", http.StatusOK, &body)
}

// TestQueryStaleAsOf pins the degraded-answer markers: a fresh engine
// answers stale=false with asOf equal to the avail's RCC count, and an
// ingest bumps asOf on the next (rebuilt) answer.
func TestQueryStaleAsOf(t *testing.T) {
	srv, ds, _ := newDurableServer(t, t.TempDir(), Options{})
	a := ongoingAvail(t, ds)
	base := len(ds.RCCsByAvail()[a.ID])
	url := fmt.Sprintf("%s/query?avail=%d&date=%s", srv.URL, a.ID, a.PhysicalTime(60))

	var view struct {
		Stale bool  `json:"stale"`
		AsOf  int64 `json:"asOf"`
	}
	get(t, url, http.StatusOK, &view)
	if view.Stale || view.AsOf != int64(base) {
		t.Fatalf("fresh answer stale=%v asOf=%d, want false/%d", view.Stale, view.AsOf, base)
	}

	status, _, _ := postJSON(t, srv.URL+"/rccs", rccBody(920001, a), nil)
	if status != http.StatusCreated {
		t.Fatalf("ingest = %d", status)
	}
	get(t, url, http.StatusOK, &view)
	if view.Stale || view.AsOf != int64(base+1) {
		t.Fatalf("post-ingest answer stale=%v asOf=%d, want false/%d", view.Stale, view.AsOf, base+1)
	}
}
