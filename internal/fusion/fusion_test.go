package fusion

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKnownValues(t *testing.T) {
	preds := []float64{30, 10, 20}
	cases := []struct {
		name string
		want float64
	}{
		{MethodNone, 20},
		{MethodMin, 10},
		{MethodAverage, 20},
	}
	for _, c := range cases {
		f, err := New(c.name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := f.Fuse(preds)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("%s.Fuse = %f, want %f", c.name, got, c.want)
		}
		if f.Name() != c.name {
			t.Errorf("Name = %q, want %q", f.Name(), c.name)
		}
	}
}

func TestSinglePrediction(t *testing.T) {
	for _, name := range Methods() {
		f, _ := New(name)
		got, err := f.Fuse([]float64{42})
		if err != nil || got != 42 {
			t.Errorf("%s.Fuse([42]) = %f,%v want 42,nil", name, got, err)
		}
	}
}

func TestEmptyErrors(t *testing.T) {
	for _, name := range Methods() {
		f, _ := New(name)
		if _, err := f.Fuse(nil); err == nil {
			t.Errorf("%s: empty input: want error", name)
		}
	}
}

func TestNewUnknown(t *testing.T) {
	if _, err := New("mode"); err == nil {
		t.Error("New(mode): want error")
	}
}

// TestQuickFusionBounds: every fused value lies within [min, max] of the
// inputs, and min fusion is <= average <= none is not generally true, but
// min <= average always holds.
func TestQuickFusionBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		preds := make([]float64, n)
		lo, hi := 1e18, -1e18
		for i := range preds {
			preds[i] = rng.NormFloat64() * 100
			if preds[i] < lo {
				lo = preds[i]
			}
			if preds[i] > hi {
				hi = preds[i]
			}
		}
		var vals []float64
		for _, name := range Methods() {
			fz, err := New(name)
			if err != nil {
				return false
			}
			v, err := fz.Fuse(preds)
			if err != nil {
				return false
			}
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
			vals = append(vals, v)
		}
		// vals = [none, min, average]; min <= average.
		return vals[1] <= vals[2]+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
