package fusion_test

import (
	"fmt"

	"domd/internal/fusion"
)

// Fuse a DoMD trajectory (estimates at 0%, 10%, 20% of planned duration)
// with the paper's selected technique.
func ExampleAverage() {
	f, err := fusion.New(fusion.MethodAverage)
	if err != nil {
		panic(err)
	}
	fused, err := f.Fuse([]float64{30, 18, 24})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.0f days\n", fused)
	// Output: 24 days
}

func ExampleRecency() {
	// Future-work fuser: exponentially weight recent estimates.
	r, err := fusion.NewRecency(0.5)
	if err != nil {
		panic(err)
	}
	fused, err := r.Fuse([]float64{0, 30}) // weights 1/3 and 2/3
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.0f days\n", fused)
	// Output: 20 days
}
