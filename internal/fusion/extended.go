package fusion

import (
	"fmt"
	"math"
	"sort"
)

// The paper evaluates none/min/average and notes "there are many other
// possible ensembling methods but we leave these for future work" (Task 6).
// This file implements that future work: median fusion (robust to one bad
// timeline model), recency-weighted fusion (later models have seen more of
// the avail), and trimmed-mean fusion (drop the extremes, average the rest).

// Extended method names accepted by New.
const (
	MethodMedian  = "median"
	MethodRecency = "recency"
	MethodTrimmed = "trimmed"
)

// ExtendedMethods lists the future-work fusers implemented beyond the
// paper's three.
func ExtendedMethods() []string { return []string{MethodMedian, MethodRecency, MethodTrimmed} }

// AllMethods lists every fusion technique, paper ones first.
func AllMethods() []string { return append(Methods(), ExtendedMethods()...) }

// Median returns the middle prediction (mean of the two middles for even
// counts).
type Median struct{}

// Name implements Fuser.
func (Median) Name() string { return MethodMedian }

// Fuse implements Fuser.
func (Median) Fuse(preds []float64) (float64, error) {
	if err := check(preds); err != nil {
		return 0, err
	}
	s := append([]float64(nil), preds...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2], nil
	}
	return (s[n/2-1] + s[n/2]) / 2, nil
}

// Recency weights predictions exponentially toward the most recent one:
// weight_i ∝ Lambda^(n-1-i). Lambda in (0, 1]; 1 degrades to average.
type Recency struct{ Lambda float64 }

// NewRecency validates λ ∈ (0, 1].
func NewRecency(lambda float64) (Recency, error) {
	if lambda <= 0 || lambda > 1 {
		return Recency{}, fmt.Errorf("fusion: recency lambda %f outside (0,1]", lambda)
	}
	return Recency{Lambda: lambda}, nil
}

// Name implements Fuser.
func (r Recency) Name() string { return MethodRecency }

// Fuse implements Fuser.
func (r Recency) Fuse(preds []float64) (float64, error) {
	if err := check(preds); err != nil {
		return 0, err
	}
	lambda := r.Lambda
	if lambda == 0 { //lint:ignore floateq the zero value selects the default λ; no arithmetic precedes it
		lambda = 0.7
	}
	var sum, wsum float64
	n := len(preds)
	for i, p := range preds {
		w := math.Pow(lambda, float64(n-1-i))
		sum += w * p
		wsum += w
	}
	return sum / wsum, nil
}

// Trimmed drops the single lowest and highest prediction (when there are at
// least three) and averages the remainder.
type Trimmed struct{}

// Name implements Fuser.
func (Trimmed) Name() string { return MethodTrimmed }

// Fuse implements Fuser.
func (Trimmed) Fuse(preds []float64) (float64, error) {
	if err := check(preds); err != nil {
		return 0, err
	}
	if len(preds) < 3 {
		return Average{}.Fuse(preds)
	}
	s := append([]float64(nil), preds...)
	sort.Float64s(s)
	s = s[1 : len(s)-1]
	sum := 0.0
	for _, p := range s {
		sum += p
	}
	return sum / float64(len(s)), nil
}
