package fusion

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMedian(t *testing.T) {
	m := Median{}
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{5}, 5},
		{[]float64{1, 9}, 5},
		{[]float64{9, 1, 5}, 5},
		{[]float64{1, 2, 100, 3}, 2.5},
	}
	for _, c := range cases {
		got, err := m.Fuse(c.in)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Median(%v) = %f, want %f", c.in, got, c.want)
		}
	}
	if _, err := m.Fuse(nil); err == nil {
		t.Error("empty: want error")
	}
}

func TestMedianRobustToOutlier(t *testing.T) {
	preds := []float64{20, 22, 21, 19, 500} // one broken timeline model
	med, _ := Median{}.Fuse(preds)
	avg, _ := Average{}.Fuse(preds)
	if math.Abs(med-20.5) > 1 {
		t.Errorf("median = %f, want ≈20.5", med)
	}
	if math.Abs(avg-20.5) < math.Abs(med-20.5) {
		t.Error("median should resist the outlier better than average")
	}
}

func TestRecency(t *testing.T) {
	r, err := NewRecency(0.5)
	if err != nil {
		t.Fatal(err)
	}
	// weights for [a, b]: a gets 0.5, b gets 1 → (0.5a + b)/1.5
	got, err := r.Fuse([]float64{0, 30})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-20) > 1e-12 {
		t.Errorf("recency = %f, want 20", got)
	}
	// Lambda 1 degrades to average.
	one, _ := NewRecency(1)
	a, _ := one.Fuse([]float64{10, 20, 30})
	if math.Abs(a-20) > 1e-12 {
		t.Errorf("lambda=1 = %f, want mean 20", a)
	}
	if _, err := NewRecency(0); err == nil {
		t.Error("lambda=0: want error")
	}
	if _, err := NewRecency(1.5); err == nil {
		t.Error("lambda>1: want error")
	}
}

func TestRecencyWeightsLater(t *testing.T) {
	r, _ := NewRecency(0.5)
	// Rising trajectory: recency must land above the plain average.
	preds := []float64{0, 10, 20, 30}
	rec, _ := r.Fuse(preds)
	avg, _ := Average{}.Fuse(preds)
	if rec <= avg {
		t.Errorf("recency %f should exceed average %f on a rising trajectory", rec, avg)
	}
}

func TestTrimmed(t *testing.T) {
	tr := Trimmed{}
	got, err := tr.Fuse([]float64{1, 2, 3, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2.5 {
		t.Errorf("trimmed = %f, want 2.5", got)
	}
	// Fewer than 3 falls back to average.
	two, _ := tr.Fuse([]float64{10, 20})
	if two != 15 {
		t.Errorf("trimmed of 2 = %f, want mean 15", two)
	}
}

func TestNewKnowsExtendedMethods(t *testing.T) {
	for _, name := range AllMethods() {
		f, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if f.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, f.Name())
		}
	}
	if len(AllMethods()) != 6 {
		t.Errorf("AllMethods = %v, want 6 techniques", AllMethods())
	}
}

// TestQuickExtendedFusionBounds: every extended fuser stays within the
// prediction envelope.
func TestQuickExtendedFusionBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(15)
		preds := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range preds {
			preds[i] = rng.NormFloat64() * 100
			lo = math.Min(lo, preds[i])
			hi = math.Max(hi, preds[i])
		}
		for _, name := range ExtendedMethods() {
			fz, err := New(name)
			if err != nil {
				return false
			}
			v, err := fz.Fuse(preds)
			if err != nil {
				return false
			}
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
