// Package fusion implements Task 6 of the paper: combining the DoMD
// predictions made at every logical timestamp up to t* into a single fused
// estimate. The paper evaluates no fusion (latest prediction), minimum
// fusion, and average fusion — selecting average.
package fusion

import "fmt"

// Fuser combines the trajectory of predictions {d̂_0, d̂_x, ..., d̂_t*}
// (chronological order) into one estimate.
type Fuser interface {
	// Name identifies the method.
	Name() string
	// Fuse combines preds (must be non-empty, chronological).
	Fuse(preds []float64) (float64, error)
}

// Method names accepted by New, matching §5.2.1.
const (
	MethodNone    = "none"
	MethodMin     = "min"
	MethodAverage = "average"
)

// Methods lists all fusion techniques in the paper's order.
func Methods() []string { return []string{MethodNone, MethodMin, MethodAverage} }

// New constructs a Fuser by name.
func New(name string) (Fuser, error) {
	switch name {
	case MethodNone:
		return None{}, nil
	case MethodMin:
		return Min{}, nil
	case MethodAverage:
		return Average{}, nil
	case MethodMedian:
		return Median{}, nil
	case MethodRecency:
		return NewRecency(0.7)
	case MethodTrimmed:
		return Trimmed{}, nil
	default:
		return nil, fmt.Errorf("fusion: unknown method %q", name)
	}
}

func check(preds []float64) error {
	if len(preds) == 0 {
		return fmt.Errorf("fusion: no predictions to fuse")
	}
	return nil
}

// None returns the most recent prediction unchanged (the default f⁰ used
// while earlier pipeline stages are being optimized).
type None struct{}

// Name implements Fuser.
func (None) Name() string { return MethodNone }

// Fuse implements Fuser.
func (None) Fuse(preds []float64) (float64, error) {
	if err := check(preds); err != nil {
		return 0, err
	}
	return preds[len(preds)-1], nil
}

// Min returns the minimum prediction over the timeline.
type Min struct{}

// Name implements Fuser.
func (Min) Name() string { return MethodMin }

// Fuse implements Fuser.
func (Min) Fuse(preds []float64) (float64, error) {
	if err := check(preds); err != nil {
		return 0, err
	}
	m := preds[0]
	for _, p := range preds[1:] {
		if p < m {
			m = p
		}
	}
	return m, nil
}

// Average returns the mean prediction over the timeline — the paper's
// selected technique.
type Average struct{}

// Name implements Fuser.
func (Average) Name() string { return MethodAverage }

// Fuse implements Fuser.
func (Average) Fuse(preds []float64) (float64, error) {
	if err := check(preds); err != nil {
		return 0, err
	}
	s := 0.0
	for _, p := range preds {
		s += p
	}
	return s / float64(len(preds)), nil
}
