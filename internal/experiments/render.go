// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the synthetic NMD: the dataset statistics (Table 5,
// Fig. 2), the index scalability study (Figs. 5a–5c, Table 6), the staged
// modeling-pipeline experiments (Figs. 6a–6f), and the final test-set
// quality table (Table 7).
//
// Each experiment returns a Table whose String rendering prints the same
// rows/series the paper reports, so shapes can be compared directly.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	// ID is the paper artifact id ("fig5a", "table7", ...).
	ID string
	// Title describes the artifact.
	Title string
	// Header names the columns.
	Header []string
	// Rows are the data cells, already formatted.
	Rows [][]string
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
