package experiments

import (
	"fmt"

	"domd/internal/domain"
	"domd/internal/navsim"
	"domd/internal/stats"
)

// Fig2 reproduces the delay-distribution histogram of Fig. 2.
func Fig2(ds *navsim.Dataset, bins int) (*Table, error) {
	delays := ds.Delays()
	counts, edges, err := stats.Histogram(delays, bins)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig2: %w", err)
	}
	t := &Table{
		ID:     "fig2",
		Title:  "Delay distribution for all availabilities (days)",
		Header: []string{"bin_lo", "bin_hi", "count", "histogram"},
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range counts {
		bar := ""
		if maxCount > 0 {
			n := c * 50 / maxCount
			for j := 0; j < n; j++ {
				bar += "#"
			}
		}
		t.Rows = append(t.Rows, []string{f1(edges[i]), f1(edges[i+1]), fmt.Sprintf("%d", c), bar})
	}
	return t, nil
}

// Table5 reproduces the dataset statistics table.
func Table5(ds *navsim.Dataset) *Table {
	closed, ongoing := 0, 0
	ships := map[int]bool{}
	var minDay, maxDay domain.Day
	first := true
	for i := range ds.Avails {
		a := &ds.Avails[i]
		ships[a.ShipID] = true
		if a.Status == domain.StatusClosed {
			closed++
		} else {
			ongoing++
		}
		if first || a.PlanStart < minDay {
			minDay = a.PlanStart
		}
		if first || a.PlanEnd > maxDay {
			maxDay = a.PlanEnd
		}
		first = false
	}
	return &Table{
		ID:     "table5",
		Title:  "Statistics of the (synthetic) dataset",
		Header: []string{"statistic", "value"},
		Rows: [][]string{
			{"# closed avails", fmt.Sprintf("%d", closed)},
			{"# ongoing avails", fmt.Sprintf("%d", ongoing)},
			{"# distinct ships", fmt.Sprintf("%d", len(ships))},
			{"# RCCs", fmt.Sprintf("%d", len(ds.RCCs))},
			{"earliest plan start", minDay.String()},
			{"latest plan end", maxDay.String()},
		},
	}
}
