package experiments

import (
	"domd/internal/core"
	"domd/internal/fusion"
)

// Fig6fExt is the future-work ablation the paper defers ("there are many
// other possible ensembling methods"): the three paper fusers plus median,
// recency-weighted and trimmed-mean fusion, compared on validation MAE over
// the timeline (shared untuned model bank — the ranking, not the level, is
// the point).
func Fig6fExt(w *Workload) (*Table, error) {
	return w.fusionTable("fig6f-ext", "Validation MAE: paper + future-work fusion techniques", fusion.AllMethods(), 0)
}

// AblationStacking compares the paper's two architectures with the loss
// dimension crossed in (2×3 grid), isolating whether the stacking result of
// Fig. 6c depends on the loss choice.
func AblationStacking(w *Workload) (*Table, error) {
	var names []string
	var cfgs []core.Config
	for _, stacked := range []bool{false, true} {
		arch := "flat"
		if stacked {
			arch = "stacked"
		}
		for _, l := range []string{"l2", "pseudohuber"} {
			cfg := w.baseline()
			cfg.Stacked = stacked
			cfg.Loss = l
			if l == "pseudohuber" {
				cfg.LossDelta = 18
			}
			names = append(names, arch+"/"+l)
			cfgs = append(cfgs, cfg)
		}
	}
	return w.curveTable("ablation-stacking", "Validation MAE: architecture × loss ablation", names, cfgs)
}
