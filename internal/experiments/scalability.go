package experiments

import (
	"fmt"
	"runtime"
	"time"

	"domd/internal/domain"
	"domd/internal/features"
	"domd/internal/index"
	"domd/internal/navsim"
	"domd/internal/swlin"
)

// LogicalInterval is one RCC projected onto its avail's logical timeline in
// fixed-point centi-percent (t* × 100), the (t*_start, t*_end, ID) triple
// the paper's indexes store.
type LogicalInterval struct {
	index.Interval
	// Type and Subsystem carry the group-by attributes; Amount and
	// Duration the aggregated measures of the Fig. 3 Status Query.
	Type      domain.RCCType
	Subsystem int
	Amount    float64
	Duration  float64
}

// ProjectLogical converts the dataset's RCCs to logical intervals. RCCs of
// avails with unusable plans are skipped.
func ProjectLogical(ds *navsim.Dataset) []LogicalInterval {
	availByID := make(map[int]*domain.Avail, len(ds.Avails))
	for i := range ds.Avails {
		availByID[ds.Avails[i].ID] = &ds.Avails[i]
	}
	out := make([]LogicalInterval, 0, len(ds.RCCs))
	for i := range ds.RCCs {
		r := &ds.RCCs[i]
		a := availByID[r.AvailID]
		if a == nil || a.PlannedDuration() <= 0 {
			continue
		}
		ts, err := a.LogicalTime(r.Created)
		if err != nil {
			continue
		}
		te, err := a.LogicalTime(r.Settled)
		if err != nil {
			continue
		}
		out = append(out, LogicalInterval{
			Interval:  index.Interval{Start: int64(ts * 100), End: int64(te * 100), ID: len(out)},
			Type:      r.Type,
			Subsystem: swlin.Code(r.SWLIN).Subsystem(),
			Amount:    r.Amount,
			Duration:  float64(r.Duration()),
		})
	}
	return out
}

// ScaleMeasurement is one (factor × index design) cell of the scalability
// study.
type ScaleMeasurement struct {
	Factor   int
	NumRCCs  int
	Kind     index.Kind
	Creation time.Duration
	MemoryMB float64
	// Query is the cost of the full Status Query sweep over the t* grid
	// (incremental for the AVL design, from-scratch otherwise).
	Query time.Duration
}

// Total returns creation plus query time (Fig. 5c).
func (m ScaleMeasurement) Total() time.Duration { return m.Creation + m.Query }

// RunScalability measures index creation, memory, and Status Query sweep
// cost for every design at every scale factor. gridStep is the t* spacing
// of the query sweep (the paper's x).
func RunScalability(base *navsim.Dataset, factors []int, gridStep float64) ([]ScaleMeasurement, error) {
	if gridStep <= 0 || gridStep > 100 {
		return nil, fmt.Errorf("experiments: grid step %f outside (0,100]", gridStep)
	}
	var out []ScaleMeasurement
	for _, f := range factors {
		scaled, err := navsim.Scale(base, f)
		if err != nil {
			return nil, err
		}
		ivs := ProjectLogical(scaled)
		for _, kind := range index.Kinds() {
			m := ScaleMeasurement{Factor: f, NumRCCs: len(ivs), Kind: kind}

			raw := make([]index.Interval, len(ivs))
			for i := range ivs {
				raw[i] = ivs[i].Interval
			}
			start := time.Now()
			idx, err := index.Build(kind, raw)
			if err != nil {
				return nil, err
			}
			// The naive design sorts lazily on first query; charge that
			// to creation as the paper charges "processing time that
			// would not be necessary without the indexes".
			idx.CreatedBy(-1 << 62)
			m.Creation = time.Since(start)
			m.MemoryMB = float64(idx.MemoryBytes()) / (1 << 20)

			start = time.Now()
			if kind == index.KindAVL {
				SweepIncremental(idx, ivs, gridStep)
			} else {
				SweepScratch(idx, ivs, gridStep)
			}
			m.Query = time.Since(start)
			out = append(out, m)
		}
	}
	return out, nil
}

// TensorScaleMeasurement is one scale-factor row of the feature-tensor
// build study: the full 𝒯 materialization (every avail × every grid
// timestamp × 1460 features) under the three build strategies.
type TensorScaleMeasurement struct {
	Factor    int
	NumRCCs   int
	NumAvails int
	// Scratch is the pre-sweep reference: per-avail engine, every
	// timestamp recomputed from the index, serial.
	Scratch time.Duration
	// SweepSerial is the incremental CellSweep path on one worker.
	SweepSerial time.Duration
	// SweepParallel is the CellSweep path fanned over the worker pool.
	SweepParallel time.Duration
	Workers       int
}

// RunTensorScalability measures the end-to-end tensor build (the
// transformation 𝒯 the whole modeling pipeline funnels through) at every
// scale factor, for the from-scratch reference path, the incremental sweep
// on a single worker, and the sweep fanned over workers (<= 0 selects
// GOMAXPROCS). gridStep is the t* spacing x.
func RunTensorScalability(base *navsim.Dataset, factors []int, gridStep float64, workers int) ([]TensorScaleMeasurement, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ext := features.NewExtractor()
	var out []TensorScaleMeasurement
	for _, f := range factors {
		scaled, err := navsim.Scale(base, f)
		if err != nil {
			return nil, err
		}
		byAvail := scaled.RCCsByAvail()
		m := TensorScaleMeasurement{Factor: f, NumRCCs: len(scaled.RCCs), Workers: workers}

		start := time.Now()
		tRef, err := features.BuildTensorScratch(ext, scaled.Avails, byAvail, gridStep, index.KindAVL)
		if err != nil {
			return nil, err
		}
		m.Scratch = time.Since(start)
		m.NumAvails = tRef.NumAvails()

		start = time.Now()
		if _, err := features.BuildTensorOpt(ext, scaled.Avails, byAvail, gridStep, index.KindAVL, features.TensorOptions{Workers: 1}); err != nil {
			return nil, err
		}
		m.SweepSerial = time.Since(start)

		start = time.Now()
		if _, err := features.BuildTensorOpt(ext, scaled.Avails, byAvail, gridStep, index.KindAVL, features.TensorOptions{Workers: workers}); err != nil {
			return nil, err
		}
		m.SweepParallel = time.Since(start)
		out = append(out, m)
	}
	return out, nil
}

// TensorScaleTable renders the tensor-build study in the Fig. 5 style.
func TensorScaleTable(ms []TensorScaleMeasurement) *Table {
	t := &Table{
		ID:     "tensor",
		Title:  "Feature-tensor build time (ms) vs RCC scale: scratch vs incremental sweep vs parallel sweep",
		Header: []string{"scale", "#rccs", "#avails", "scratch_serial", "sweep_serial", "sweep_parallel", "speedup"},
	}
	for _, m := range ms {
		speedup := 0.0
		if m.SweepParallel > 0 {
			speedup = float64(m.Scratch) / float64(m.SweepParallel)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dx", m.Factor),
			fmt.Sprintf("%d", m.NumRCCs),
			fmt.Sprintf("%d", m.NumAvails),
			f2(float64(m.Scratch.Microseconds()) / 1000),
			f2(float64(m.SweepSerial.Microseconds()) / 1000),
			f2(float64(m.SweepParallel.Microseconds()) / 1000),
			f2(speedup),
		})
	}
	return t
}

// GroupAgg accumulates the Fig. 3 measures per (type × subsystem) group.
type GroupAgg struct {
	Count       int
	SumAmount   float64
	SumDuration float64
}

const numGroups = domain.NumRCCTypes * 10

func groupOf(iv *LogicalInterval) int { return int(iv.Type)*10 + iv.Subsystem }

// SweepScratch answers the Status Query at every grid point from scratch:
// retrieve the created set and re-aggregate all of it (what the Pandas
// merge baseline and the non-incremental interval tree do).
func SweepScratch(idx index.TimeIndex, ivs []LogicalInterval, step float64) [][]GroupAgg {
	var results [][]GroupAgg
	for ts := 0.0; ts <= 100; ts += step {
		q := int64(ts * 100)
		groups := make([]GroupAgg, numGroups)
		for _, id := range idx.CreatedBy(q) {
			iv := &ivs[id]
			g := &groups[groupOf(iv)]
			g.Count++
			g.SumAmount += iv.Amount
			g.SumDuration += iv.Duration
		}
		results = append(results, groups)
	}
	return results
}

// SweepIncremental advances a StatStructure-style running aggregate using
// the (prev, cur] windows of §4.3: each step touches only the new events.
func SweepIncremental(idx index.TimeIndex, ivs []LogicalInterval, step float64) [][]GroupAgg {
	var results [][]GroupAgg
	groups := make([]GroupAgg, numGroups)
	prev := int64(-1 << 62)
	for ts := 0.0; ts <= 100; ts += step {
		q := int64(ts * 100)
		for _, id := range idx.CreatedIn(prev, q) {
			iv := &ivs[id]
			g := &groups[groupOf(iv)]
			g.Count++
			g.SumAmount += iv.Amount
			g.SumDuration += iv.Duration
		}
		prev = q
		snapshot := make([]GroupAgg, numGroups)
		copy(snapshot, groups)
		results = append(results, snapshot)
	}
	return results
}

// Fig5a renders index creation time vs scale.
func Fig5a(ms []ScaleMeasurement) *Table {
	return scaleTable(ms, "fig5a", "Index creation time (ms) vs RCC scale", func(m ScaleMeasurement) string {
		return f2(float64(m.Creation.Microseconds()) / 1000)
	})
}

// Table6 renders index memory usage vs scale.
func Table6(ms []ScaleMeasurement) *Table {
	return scaleTable(ms, "table6", "Index construction cost considering space (MB)", func(m ScaleMeasurement) string {
		return f2(m.MemoryMB)
	})
}

// Fig5b renders query processing time vs scale.
func Fig5b(ms []ScaleMeasurement) *Table {
	return scaleTable(ms, "fig5b", "Status Query sweep time (ms) vs RCC scale (AVL incremental)", func(m ScaleMeasurement) string {
		return f2(float64(m.Query.Microseconds()) / 1000)
	})
}

// Fig5c renders total (creation + query) time vs scale.
func Fig5c(ms []ScaleMeasurement) *Table {
	return scaleTable(ms, "fig5c", "Index creation + query processing time (ms)", func(m ScaleMeasurement) string {
		return f2(float64(m.Total().Microseconds()) / 1000)
	})
}

func scaleTable(ms []ScaleMeasurement, id, title string, cell func(ScaleMeasurement) string) *Table {
	t := &Table{
		ID:     id,
		Title:  title,
		Header: []string{"scale", "#rccs", "pandas_merge(naive)", "avl_tree", "interval_tree"},
	}
	byFactor := map[int]map[index.Kind]ScaleMeasurement{}
	var order []int
	for _, m := range ms {
		if byFactor[m.Factor] == nil {
			byFactor[m.Factor] = map[index.Kind]ScaleMeasurement{}
			order = append(order, m.Factor)
		}
		byFactor[m.Factor][m.Kind] = m
	}
	for _, f := range order {
		row := byFactor[f]
		naive := row[index.KindNaive]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%dx", f),
			fmt.Sprintf("%d", naive.NumRCCs),
			cell(row[index.KindNaive]),
			cell(row[index.KindAVL]),
			cell(row[index.KindInterval]),
		})
	}
	return t
}
