package experiments

import (
	"strings"
	"testing"

	"domd/internal/core"
	"domd/internal/featsel"
	"domd/internal/index"
	"domd/internal/ml/gbt"
	"domd/internal/navsim"
)

func smallDataset(t *testing.T) *navsim.Dataset {
	t.Helper()
	ds, err := navsim.Generate(navsim.Config{
		NumClosed: 40, NumOngoing: 2, MeanRCCsPerAvail: 40, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func smallWorkload(t *testing.T) *Workload {
	t.Helper()
	w, err := NewWorkload(navsim.Config{
		NumClosed: 40, NumOngoing: 0, MeanRCCsPerAvail: 40, Seed: 3,
	}, 25)
	if err != nil {
		t.Fatal(err)
	}
	w.DesignGBT = gbt.DefaultParams()
	w.DesignGBT.NumRounds = 15
	w.DesignGBT.LearningRate = 0.3
	w.Runs = 1 // keep tests fast; the full harness averages 3 runs
	return w
}

func TestFig2AndTable5(t *testing.T) {
	ds := smallDataset(t)
	fig2, err := Fig2(ds, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig2.Rows) != 10 {
		t.Errorf("fig2 rows = %d, want 10 bins", len(fig2.Rows))
	}
	if !strings.Contains(fig2.String(), "fig2") {
		t.Error("rendering missing id")
	}
	t5 := Table5(ds)
	if len(t5.Rows) != 6 {
		t.Errorf("table5 rows = %d", len(t5.Rows))
	}
	if t5.Rows[0][1] != "40" {
		t.Errorf("closed avails cell = %q, want 40", t5.Rows[0][1])
	}
	if _, err := Fig2(&navsim.Dataset{}, 10); err == nil {
		t.Error("fig2 on empty dataset: want error")
	}
}

func TestProjectLogical(t *testing.T) {
	ds := smallDataset(t)
	ivs := ProjectLogical(ds)
	if len(ivs) == 0 || len(ivs) > len(ds.RCCs) {
		t.Fatalf("projected %d of %d", len(ivs), len(ds.RCCs))
	}
	for _, iv := range ivs {
		if iv.End < iv.Start {
			t.Fatalf("inverted logical interval %+v", iv)
		}
		if iv.Subsystem < 0 || iv.Subsystem > 9 {
			t.Fatalf("bad subsystem %d", iv.Subsystem)
		}
	}
}

func TestScalabilitySweepEquivalence(t *testing.T) {
	// The incremental sweep must produce exactly the same group aggregates
	// as the from-scratch sweep at every grid point.
	ds := smallDataset(t)
	ivs := ProjectLogical(ds)
	raw := make([]index.Interval, len(ivs))
	for i := range ivs {
		raw[i] = ivs[i].Interval
	}
	avl, err := index.Build(index.KindAVL, raw)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := index.Build(index.KindNaive, raw)
	if err != nil {
		t.Fatal(err)
	}
	inc := SweepIncremental(avl, ivs, 10)
	scr := SweepScratch(naive, ivs, 10)
	if len(inc) != len(scr) {
		t.Fatalf("step counts differ: %d vs %d", len(inc), len(scr))
	}
	for step := range inc {
		for g := range inc[step] {
			a, b := inc[step][g], scr[step][g]
			if a.Count != b.Count || !almostEq(a.SumAmount, b.SumAmount) || !almostEq(a.SumDuration, b.SumDuration) {
				t.Fatalf("step %d group %d: incremental %+v vs scratch %+v", step, g, a, b)
			}
		}
	}
}

func almostEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-6*(1+abs(a))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestRunScalabilityShapes(t *testing.T) {
	ds := smallDataset(t)
	ms, err := RunScalability(ds, []int{1, 3}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 6 { // 2 factors × 3 kinds
		t.Fatalf("%d measurements, want 6", len(ms))
	}
	byKey := map[string]ScaleMeasurement{}
	for _, m := range ms {
		byKey[string(m.Kind)+"-"+string(rune('0'+m.Factor))] = m
		if m.Creation <= 0 || m.Query <= 0 || m.MemoryMB <= 0 {
			t.Errorf("non-positive measurement: %+v", m)
		}
	}
	// Scaling must increase RCC count 3x.
	if byKey["avl-3"].NumRCCs != 3*byKey["avl-1"].NumRCCs {
		t.Errorf("3x scale rccs = %d, want 3 × %d", byKey["avl-3"].NumRCCs, byKey["avl-1"].NumRCCs)
	}
	// Table 6 shape: naive memory roughly double the trees.
	if byKey["naive-3"].MemoryMB < byKey["avl-3"].MemoryMB {
		t.Errorf("naive memory %f should exceed AVL %f", byKey["naive-3"].MemoryMB, byKey["avl-3"].MemoryMB)
	}
	for _, render := range []*Table{Fig5a(ms), Fig5b(ms), Fig5c(ms), Table6(ms)} {
		if len(render.Rows) != 2 {
			t.Errorf("%s rows = %d, want 2", render.ID, len(render.Rows))
		}
		if len(render.Rows[0]) != 5 {
			t.Errorf("%s cols = %d, want 5", render.ID, len(render.Rows[0]))
		}
	}
	if _, err := RunScalability(ds, []int{1}, 0); err == nil {
		t.Error("bad grid step: want error")
	}
}

func TestFig6aSmall(t *testing.T) {
	w := smallWorkload(t)
	tab, err := Fig6a(w, []string{featsel.MethodPearson, featsel.MethodRandom}, []int{20, 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 || len(tab.Header) != 3 {
		t.Fatalf("fig6a shape %dx%d", len(tab.Rows), len(tab.Header))
	}
}

func TestFig6bcdfSmall(t *testing.T) {
	w := smallWorkload(t)
	for _, fn := range []func(*Workload) (*Table, error){Fig6b, Fig6c, Fig6d, Fig6f} {
		tab, err := fn(w)
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) != len(w.Tensor.Timestamps) {
			t.Errorf("%s rows = %d, want %d", tab.ID, len(tab.Rows), len(w.Tensor.Timestamps))
		}
	}
}

func TestFig6eSmall(t *testing.T) {
	w := smallWorkload(t)
	tab, err := Fig6e(w, []int{3, 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("fig6e rows = %d", len(tab.Rows))
	}
}

func TestTable7Small(t *testing.T) {
	w := smallWorkload(t)
	cfg := core.DefaultConfig()
	cfg.HPTTrials = 0 // keep the test fast
	cfg.GBTParams = &w.DesignGBT
	tab, reports, err := Table7(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(w.Tensor.Timestamps) + 1 // + average
	if len(tab.Rows) != wantRows {
		t.Fatalf("table7 rows = %d, want %d", len(tab.Rows), wantRows)
	}
	if tab.Rows[wantRows-1][0] != "Average" {
		t.Error("last row must be the average")
	}
	if len(reports) != wantRows {
		t.Fatalf("reports = %d", len(reports))
	}
	// Percentile monotonicity in each report.
	for i, r := range reports {
		if !(r.MAE80 <= r.MAE90 && r.MAE90 <= r.MAE) {
			t.Errorf("report %d: MAE percentiles not monotone: %+v", i, r)
		}
	}
}

func TestWorkloadMidIndex(t *testing.T) {
	w := smallWorkload(t)
	mid := w.midIndex()
	ts := w.Tensor.Timestamps[mid]
	if ts != 50 {
		t.Errorf("mid timestamp = %g, want 50 on a 25%% grid", ts)
	}
}

func TestFig6fExtAndAblation(t *testing.T) {
	w := smallWorkload(t)
	ext, err := Fig6fExt(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(ext.Header) != 7 { // t* + 6 fusers
		t.Errorf("fig6f-ext header = %v", ext.Header)
	}
	ab, err := AblationStacking(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(ab.Header) != 5 { // t* + 2×2 grid
		t.Errorf("ablation header = %v", ab.Header)
	}
}
