package experiments

import (
	"fmt"
	"math"

	"domd/internal/core"
	"domd/internal/featsel"
	"domd/internal/features"
	"domd/internal/fusion"
	"domd/internal/index"
	"domd/internal/metrics"
	"domd/internal/ml/gbt"
	"domd/internal/navsim"
	"domd/internal/split"
)

// Workload bundles the feature tensor and data splits every modeling
// experiment shares (§5.2.1 experimental setup). Results are averaged over
// Runs train/validation redraws, matching the paper's "average of 3 runs".
type Workload struct {
	Tensor *features.Tensor
	// Splits is the primary split (first redraw); the figure experiments
	// average over splitVariants.
	Splits split.Splits
	// DesignGBT is the default booster H⁰ used by the staged experiments.
	DesignGBT gbt.Params
	Seed      int64
	// Runs is the number of train/val redraws averaged (default 3; the
	// recent-30% test carve-out is deterministic and shared).
	Runs     int
	variants []split.Splits
}

// NewWorkload generates data, extracts the tensor on the given t* gap, and
// carves the paper's 30%-recent test / 25%-random validation splits.
func NewWorkload(cfg navsim.Config, gap float64) (*Workload, error) {
	ds, err := navsim.Generate(cfg)
	if err != nil {
		return nil, err
	}
	ext := features.NewExtractor()
	tensor, err := features.BuildTensor(ext, ds.Avails, ds.RCCsByAvail(), gap, index.KindAVL)
	if err != nil {
		return nil, err
	}
	sp, err := split.Make(split.DefaultConfig(), tensor.Avails)
	if err != nil {
		return nil, err
	}
	p := gbt.DefaultParams()
	p.NumRounds = 40
	p.LearningRate = 0.15
	return &Workload{Tensor: tensor, Splits: sp, DesignGBT: p, Seed: 1, Runs: 3}, nil
}

// splitVariants lazily builds the Runs train/val redraws.
func (w *Workload) splitVariants() ([]split.Splits, error) {
	if w.variants != nil {
		return w.variants, nil
	}
	runs := w.Runs
	if runs < 1 {
		runs = 1
	}
	for r := 0; r < runs; r++ {
		cfg := split.DefaultConfig()
		cfg.Seed = w.Seed + int64(r)
		sp, err := split.Make(cfg, w.Tensor.Avails)
		if err != nil {
			return nil, err
		}
		w.variants = append(w.variants, sp)
	}
	return w.variants, nil
}

// baseline is the default configuration (m⁰, l⁰, H⁰, f⁰) used while a
// stage's parameter is being varied.
func (w *Workload) baseline() core.Config {
	cfg := core.BaselineConfig()
	cfg.Seed = w.Seed
	cfg.GBTParams = &w.DesignGBT
	return cfg
}

// valCurve trains cfg on each train/val redraw and returns the
// run-averaged per-timestamp validation MAE (progressively fused under
// cfg's fusion method) — the paper's average-of-3-runs protocol.
func (w *Workload) valCurve(cfg core.Config) ([]float64, error) {
	variants, err := w.splitVariants()
	if err != nil {
		return nil, err
	}
	var out []float64
	for _, sp := range variants {
		p, err := core.Train(cfg, w.Tensor, sp.Train, sp.Val)
		if err != nil {
			return nil, err
		}
		reports, err := p.EvaluateRows(w.Tensor, sp.Val)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = make([]float64, len(reports))
		}
		for i, r := range reports {
			out[i] += r.MAE
		}
	}
	for i := range out {
		out[i] /= float64(len(variants))
	}
	return out, nil
}

// midIndex locates the grid point closest to 50% planned duration, where
// Fig. 6a is plotted.
func (w *Workload) midIndex() int {
	best, bestDist := 0, math.Inf(1)
	for i, ts := range w.Tensor.Timestamps {
		if d := math.Abs(ts - 50); d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// Fig6a compares feature-selection methods across feature-set sizes k at
// 50% planned duration (validation MAE).
func Fig6a(w *Workload, selectors []string, ks []int) (*Table, error) {
	if len(selectors) == 0 {
		selectors = featsel.Methods()
	}
	if len(ks) == 0 {
		for k := 20; k <= 100; k += 10 {
			ks = append(ks, k)
		}
	}
	mid := w.midIndex()
	t := &Table{
		ID:     "fig6a",
		Title:  fmt.Sprintf("Validation MAE varying feature selection method and k @%g%% planned duration", w.Tensor.Timestamps[mid]),
		Header: append([]string{"k"}, selectors...),
	}
	cells := make(map[string]map[int]float64)
	for _, s := range selectors {
		cells[s] = make(map[int]float64)
		for _, k := range ks {
			cfg := w.baseline()
			cfg.Selector = s
			cfg.K = k
			curve, err := w.valCurve(cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig6a %s k=%d: %w", s, k, err)
			}
			cells[s][k] = curve[mid]
		}
	}
	for _, k := range ks {
		row := []string{fmt.Sprintf("%d", k)}
		for _, s := range selectors {
			row = append(row, f2(cells[s][k]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// curveTable renders per-timestamp validation MAE curves for named configs.
func (w *Workload) curveTable(id, title string, names []string, configs []core.Config) (*Table, error) {
	t := &Table{ID: id, Title: title, Header: append([]string{"t*(%)"}, names...)}
	curves := make([][]float64, len(configs))
	for i, cfg := range configs {
		curve, err := w.valCurve(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s %s: %w", id, names[i], err)
		}
		curves[i] = curve
	}
	for k, ts := range w.Tensor.Timestamps {
		row := []string{f1(ts)}
		for i := range configs {
			row = append(row, f2(curves[i][k]))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig6b compares the base model families (XGBoost vs Elastic-Net linear)
// with Pearson k=60 features.
func Fig6b(w *Workload) (*Table, error) {
	xgb := w.baseline()
	lin := w.baseline()
	lin.Family = core.FamilyElasticNet
	return w.curveTable("fig6b", "Validation MAE: XGBoost vs Elastic-Net over the timeline",
		[]string{"xgboost", "elasticnet"}, []core.Config{xgb, lin})
}

// Fig6c compares stacked vs non-stacked architectures.
func Fig6c(w *Workload) (*Table, error) {
	flat := w.baseline()
	stacked := w.baseline()
	stacked.Stacked = true
	return w.curveTable("fig6c", "Validation MAE: non-stacked vs stacked architecture",
		[]string{"non-stacked", "stacked"}, []core.Config{flat, stacked})
}

// Fig6d compares training losses (ℓ2, ℓ1, pseudo-Huber δ=18).
func Fig6d(w *Workload) (*Table, error) {
	l2 := w.baseline()
	l1 := w.baseline()
	l1.Loss = "l1"
	ph := w.baseline()
	ph.Loss = "pseudohuber"
	ph.LossDelta = 18
	return w.curveTable("fig6d", "Validation MAE: loss functions (pseudo-Huber δ=18)",
		[]string{"l2", "l1", "pseudohuber(18)"}, []core.Config{l2, l1, ph})
}

// Fig6e sweeps the AutoHPT trial budget (paper grid 10..200) and reports
// the average validation MAE over the timeline per budget.
func Fig6e(w *Workload, grid []int) (*Table, error) {
	if len(grid) == 0 {
		grid = []int{10, 20, 30, 40, 50, 100, 200}
	}
	t := &Table{
		ID:     "fig6e",
		Title:  "Average validation MAE vs # hyperparameter tuning trials (TPE)",
		Header: []string{"trials", "avg_val_mae"},
	}
	for _, n := range grid {
		cfg := w.baseline()
		cfg.Loss = "pseudohuber"
		cfg.LossDelta = 18
		cfg.HPTTrials = n
		cfg.HPTMethod = "tpe"
		curve, err := w.valCurve(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig6e trials=%d: %w", n, err)
		}
		sum := 0.0
		for _, v := range curve {
			sum += v
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", n), f2(sum / float64(len(curve)))})
	}
	return t, nil
}

// fusionTable trains one pipeline with the stage-4 configuration (pseudo-
// Huber, tuned when trials > 0) and evaluates it under each fusion method —
// Task 6 operates on the already-trained model bank.
func (w *Workload) fusionTable(id, title string, methods []string, trials int) (*Table, error) {
	cfg := w.baseline()
	cfg.Loss = "pseudohuber"
	cfg.LossDelta = 18
	cfg.HPTTrials = trials
	if trials > 0 {
		cfg.HPTMethod = "tpe"
	}
	variants, err := w.splitVariants()
	if err != nil {
		return nil, err
	}
	curves := make([][]float64, len(methods))
	for i := range curves {
		curves[i] = make([]float64, len(w.Tensor.Timestamps))
	}
	for _, sp := range variants {
		p, err := core.Train(cfg, w.Tensor, sp.Train, sp.Val)
		if err != nil {
			return nil, err
		}
		for i, m := range methods {
			fp, err := p.WithFusion(m)
			if err != nil {
				return nil, err
			}
			reports, err := fp.EvaluateRows(w.Tensor, sp.Val)
			if err != nil {
				return nil, err
			}
			for k, r := range reports {
				curves[i][k] += r.MAE
			}
		}
	}
	t := &Table{ID: id, Title: title, Header: append([]string{"t*(%)"}, methods...)}
	for k, ts := range w.Tensor.Timestamps {
		row := []string{f1(ts)}
		for i := range methods {
			row = append(row, f2(curves[i][k]/float64(len(variants))))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig6f compares fusion techniques on the tuned model bank.
func Fig6f(w *Workload) (*Table, error) {
	return w.fusionTable("fig6f", "Validation MAE: fusion techniques (tuned models)", fusion.Methods(), 30)
}

// Table7 trains the final configuration on each train/val redraw and
// evaluates on the (shared, deterministic) held-out test set, averaging the
// runs: MAE-80/90/100, MSE, RMSE, R² per logical time plus the average row.
func Table7(w *Workload, cfg core.Config) (*Table, []metrics.Report, error) {
	cfg.Seed = w.Seed
	if cfg.GBTParams == nil {
		cfg.GBTParams = &w.DesignGBT
	}
	variants, err := w.splitVariants()
	if err != nil {
		return nil, nil, err
	}
	var reports []metrics.Report
	for _, sp := range variants {
		p, err := core.Train(cfg, w.Tensor, sp.Train, sp.Val)
		if err != nil {
			return nil, nil, err
		}
		runReports, err := p.EvaluateRows(w.Tensor, sp.Test)
		if err != nil {
			return nil, nil, err
		}
		if reports == nil {
			reports = make([]metrics.Report, len(runReports))
		}
		for k, r := range runReports {
			reports[k].MAE80 += r.MAE80
			reports[k].MAE90 += r.MAE90
			reports[k].MAE += r.MAE
			reports[k].MSE += r.MSE
			reports[k].RMSE += r.RMSE
			reports[k].R2 += r.R2
		}
	}
	nRuns := float64(len(variants))
	for k := range reports {
		reports[k].MAE80 /= nRuns
		reports[k].MAE90 /= nRuns
		reports[k].MAE /= nRuns
		reports[k].MSE /= nRuns
		reports[k].RMSE /= nRuns
		reports[k].R2 /= nRuns
	}
	t := &Table{
		ID:     "table7",
		Title:  "Estimation quality over timeline on test set",
		Header: []string{"t*(%)", "MAE_80th", "MAE_90th", "MAE_100th", "MSE", "RMSE", "R2"},
	}
	var avg metrics.Report
	for k, r := range reports {
		t.Rows = append(t.Rows, []string{
			f1(w.Tensor.Timestamps[k]),
			f2(r.MAE80), f2(r.MAE90), f2(r.MAE), f2(r.MSE), f2(r.RMSE), f2(r.R2),
		})
		avg.MAE80 += r.MAE80
		avg.MAE90 += r.MAE90
		avg.MAE += r.MAE
		avg.MSE += r.MSE
		avg.RMSE += r.RMSE
		avg.R2 += r.R2
	}
	n := float64(len(reports))
	avg.MAE80 /= n
	avg.MAE90 /= n
	avg.MAE /= n
	avg.MSE /= n
	avg.RMSE /= n
	avg.R2 /= n
	t.Rows = append(t.Rows, []string{
		"Average", f2(avg.MAE80), f2(avg.MAE90), f2(avg.MAE), f2(avg.MSE), f2(avg.RMSE), f2(avg.R2),
	})
	return t, append(reports, avg), nil
}
