// Drift watch: the deployed pipeline retrains on raw data "without human
// intervention" (paper §1), so an operator needs an alarm for when the live
// RCC stream stops resembling the training data. This example fits a PSI
// drift detector on the training-time feature matrix, then checks two live
// batches: one drawn from the same fleet process, and one from a fleet
// whose contract-change volume has surged 60% (e.g. a post-deployment
// maintenance backlog). The second must trip the alarm.
package main

import (
	"fmt"
	"log"

	"domd/internal/drift"
	"domd/internal/features"
	"domd/internal/index"
	"domd/internal/navsim"
)

// featureMatrix extracts the 50%-duration feature matrix of a dataset.
func featureMatrix(ds *navsim.Dataset, ext *features.Extractor) [][]float64 {
	tensor, err := features.BuildTensor(ext, ds.Avails, ds.RCCsByAvail(), 50, index.KindAVL)
	if err != nil {
		log.Fatal(err)
	}
	// Slice index 1 is t* = 50 on the {0,50,100} grid.
	return tensor.Slices[1].X
}

func main() {
	log.SetFlags(0)
	ext := features.NewExtractor()

	// Training-time reference fleet.
	ref, err := navsim.Generate(navsim.Config{NumClosed: 150, NumOngoing: 0, MeanRCCsPerAvail: 120, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	det, err := drift.NewDetector(drift.Config{}, featureMatrix(ref, ext), ext.Names())
	if err != nil {
		log.Fatal(err)
	}

	check := func(label string, cfg navsim.Config) {
		live, err := navsim.Generate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		reports, err := det.Check(featureMatrix(live, ext))
		if err != nil {
			log.Fatal(err)
		}
		severe, moderate := 0, 0
		for _, r := range reports {
			switch r.Severity {
			case drift.Severe:
				severe++
			case drift.Moderate:
				moderate++
			}
		}
		fmt.Printf("%s: %d severe, %d moderate of %d features\n", label, severe, moderate, len(reports))
		worst := drift.Worst(reports)
		fmt.Printf("  worst: %-36s PSI %.2f (%s)\n", worst.Name, worst.PSI, worst.Severity)
		// A handful of severe flags among ~1500 features is sampling noise
		// on sparse cells; a broad front of them is real drift.
		if float64(severe) > 0.02*float64(len(reports)) {
			fmt.Println("  → HOLD the unattended retrain; review the RCC stream first.")
		} else {
			fmt.Println("  → safe to retrain.")
		}
	}

	// Same process, new sample: should be quiet.
	check("live batch (same fleet process)",
		navsim.Config{NumClosed: 150, NumOngoing: 0, MeanRCCsPerAvail: 120, Seed: 99})
	// Surged workload: contract-change volume up 60%.
	check("live batch (RCC volume surged 60%)",
		navsim.Config{NumClosed: 150, NumOngoing: 0, MeanRCCsPerAvail: 192, Seed: 99})
}
