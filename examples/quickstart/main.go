// Quickstart: generate a synthetic Navy Maintenance Database, train the
// DoMD pipeline with the paper's selected configuration, and answer one
// DoMD query for an ongoing availability.
package main

import (
	"fmt"
	"log"

	"domd/internal/core"
	"domd/internal/domain"
	"domd/internal/features"
	"domd/internal/index"
	"domd/internal/navsim"
	"domd/internal/split"
)

func main() {
	log.SetFlags(0)

	// 1. Generate data (substitute for the closed NMD; see DESIGN.md).
	cfg := navsim.DefaultConfig()
	cfg.NumClosed = 100 // smaller than the paper's 187 to keep this snappy
	cfg.MeanRCCsPerAvail = 120
	ds, err := navsim.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d avails, %d RCCs\n", len(ds.Avails), len(ds.RCCs))

	// 2. Feature engineering: the (avail × feature × t*) tensor at a 20%
	// model gap interval.
	ext := features.NewExtractor()
	tensor, err := features.BuildTensor(ext, ds.Avails, ds.RCCsByAvail(), 20, index.KindAVL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tensor: %d avails × %d features × %d timestamps\n",
		tensor.NumAvails(), len(tensor.Slices[0].Names), len(tensor.Timestamps))

	// 3. Split (30% recent test, 25% random validation) and train the
	// paper's selected pipeline (Pearson k=60, XGBoost, pseudo-Huber 18,
	// average fusion). Tuning is reduced to keep the example fast.
	sp, err := split.Make(split.DefaultConfig(), tensor.Avails)
	if err != nil {
		log.Fatal(err)
	}
	pipeCfg := core.DefaultConfig()
	pipeCfg.HPTTrials = 10
	pipe, err := core.Train(pipeCfg, tensor, sp.Train, sp.Val)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Held-out quality.
	reports, err := pipe.EvaluateRows(tensor, sp.Test)
	if err != nil {
		log.Fatal(err)
	}
	last := reports[len(reports)-1]
	fmt.Printf("test set @100%%: MAE80 %.1f  MAE %.1f  R2 %.2f\n", last.MAE80, last.MAE, last.R2)

	// 5. Answer a DoMD query for an ongoing avail mid-execution.
	svc := core.NewQueryService(pipe, ext, index.KindAVL)
	for i := range ds.Avails {
		a := &ds.Avails[i]
		if a.Status != domain.StatusOngoing {
			continue
		}
		at := a.PhysicalTime(60) // 60% through planned duration
		res, err := svc.Query(a, ds.RCCsByAvail()[a.ID], at)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\navail %d queried at %s (t* = %.0f%%): estimated delay %.1f days\n",
			a.ID, at, res.LogicalTime, res.Final())
		fmt.Println("top drivers:")
		for _, d := range res.TopDrivers {
			fmt.Printf("  %-40s value %.1f\n", d.Name, d.Value)
		}
		break
	}
}
