// What-if analysis: a maintenance planner is negotiating a batch of Growth
// work mid-availability and wants to know how approving it would move the
// estimated completion date. The example trains the pipeline, queries an
// ongoing avail, injects a hypothetical burst of Growth RCCs in a critical
// subsystem, and re-queries — the delta is the estimated cost in days of
// the contract change (at ~$250k per day of delay, per the paper's intro).
package main

import (
	"fmt"
	"log"

	"domd/internal/core"
	"domd/internal/domain"
	"domd/internal/features"
	"domd/internal/index"
	"domd/internal/navsim"
	"domd/internal/split"
	"domd/internal/swlin"
)

const costPerDay = 250_000 // dollars, paper §1

func main() {
	log.SetFlags(0)

	cfg := navsim.DefaultConfig()
	cfg.NumClosed = 120
	cfg.MeanRCCsPerAvail = 120
	ds, err := navsim.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ext := features.NewExtractor()
	tensor, err := features.BuildTensor(ext, ds.Avails, ds.RCCsByAvail(), 20, index.KindAVL)
	if err != nil {
		log.Fatal(err)
	}
	sp, err := split.Make(split.DefaultConfig(), tensor.Avails)
	if err != nil {
		log.Fatal(err)
	}
	pipeCfg := core.DefaultConfig()
	pipeCfg.HPTTrials = 0
	pipe, err := core.Train(pipeCfg, tensor, sp.Train, sp.Val)
	if err != nil {
		log.Fatal(err)
	}
	svc := core.NewQueryService(pipe, ext, index.KindAVL)

	// Pick an ongoing avail queried at 60% of planned duration.
	var target *domain.Avail
	for i := range ds.Avails {
		if ds.Avails[i].Status == domain.StatusOngoing {
			target = &ds.Avails[i]
			break
		}
	}
	if target == nil {
		log.Fatal("no ongoing avail")
	}
	at := target.PhysicalTime(60)
	baseRCCs := ds.RCCsByAvail()[target.ID]

	baseline, err := svc.Query(target, baseRCCs, at)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("avail %d at %s (t* = %.0f%%)\n", target.ID, at, baseline.LogicalTime)
	fmt.Printf("baseline estimated delay: %.1f days\n\n", baseline.Final())

	// WHAT-IF: the contractor proposes 40 new Growth RCCs in subsystem 4
	// (hull structure), each ~$30k, created two weeks ago and still open.
	code, err := swlin.FromParts(434, 11, 1)
	if err != nil {
		log.Fatal(err)
	}
	nextID := 0
	for _, r := range ds.RCCs {
		if r.ID > nextID {
			nextID = r.ID
		}
	}
	scenario := append([]domain.RCC(nil), baseRCCs...)
	for i := 0; i < 40; i++ {
		nextID++
		scenario = append(scenario, domain.RCC{
			ID:      nextID,
			AvailID: target.ID,
			Type:    domain.Growth,
			SWLIN:   int(code),
			Created: at - 14,
			Settled: at + 45, // expected settlement six weeks out
			Amount:  30_000,
		})
	}
	whatIf, err := svc.Query(target, scenario, at)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("scenario: +40 Growth RCCs in subsystem 4 (hull), $30k each")
	fmt.Println("  t*(%)   baseline fused   what-if fused")
	for k, e := range baseline.Estimates {
		fmt.Printf("  %5.1f   %14.1f   %13.1f\n", e.Timestamp, e.Fused, whatIf.Estimates[k].Fused)
	}
	delta := whatIf.Final() - baseline.Final()
	fmt.Printf("\nestimated impact: %+.1f days of delay (≈ $%.1fM at $250k/day)\n",
		delta, delta*costPerDay/1e6)
	if delta > 0 {
		fmt.Println("recommendation: negotiate settlement before approving the change order.")
	} else {
		fmt.Println("recommendation: change order fits inside the current schedule risk.")
	}
}
