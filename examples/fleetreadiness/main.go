// Fleet readiness: the SMDII back-end scenario from the paper's
// introduction. A fleet has several ongoing availabilities; on a given
// morning the readiness officer asks for the estimated Days of Maintenance
// Delay of every one of them, ranked by risk, with the top contributing
// factors — the exact DoMD Query workload of Problem 1.
package main

import (
	"fmt"
	"log"
	"sort"

	"domd/internal/core"
	"domd/internal/domain"
	"domd/internal/features"
	"domd/internal/index"
	"domd/internal/navsim"
	"domd/internal/split"
)

// riskBand buckets an estimated delay the way a readiness dashboard would.
func riskBand(days float64) string {
	switch {
	case days <= 7:
		return "ON TRACK"
	case days <= 30:
		return "WATCH"
	case days <= 90:
		return "AT RISK"
	default:
		return "CRITICAL"
	}
}

func main() {
	log.SetFlags(0)

	// Historical data plus a fleet of ongoing avails.
	cfg := navsim.DefaultConfig()
	cfg.NumClosed = 120
	cfg.NumOngoing = 8
	cfg.MeanRCCsPerAvail = 120
	ds, err := navsim.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	ext := features.NewExtractor()
	tensor, err := features.BuildTensor(ext, ds.Avails, ds.RCCsByAvail(), 20, index.KindAVL)
	if err != nil {
		log.Fatal(err)
	}
	sp, err := split.Make(split.DefaultConfig(), tensor.Avails)
	if err != nil {
		log.Fatal(err)
	}
	pipeCfg := core.DefaultConfig()
	pipeCfg.HPTTrials = 0 // dashboards retrain nightly; skip tuning here
	pipe, err := core.Train(pipeCfg, tensor, sp.Train, sp.Val)
	if err != nil {
		log.Fatal(err)
	}
	svc := core.NewQueryService(pipe, ext, index.KindAVL)

	// Query every ongoing avail "today" — each at its own current t*.
	type row struct {
		avail *domain.Avail
		res   *core.Result
	}
	var rows []row
	byAvail := ds.RCCsByAvail()
	for i := range ds.Avails {
		a := &ds.Avails[i]
		if a.Status != domain.StatusOngoing {
			continue
		}
		// Simulate "today" as a point mid-execution for each avail.
		at := a.PhysicalTime(40 + float64(a.ID%5)*12)
		res, err := svc.Query(a, byAvail[a.ID], at)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{avail: a, res: res})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].res.Final() > rows[j].res.Final() })

	fmt.Println("FLEET READINESS — estimated days of maintenance delay")
	fmt.Println("avail  ship   t*(%)  est delay  planned end  est end      band")
	for _, r := range rows {
		a, res := r.avail, r.res
		estEnd := a.PlanEnd + domain.Day(int(res.Final()))
		fmt.Printf("%5d  %5d  %5.1f  %9.1f  %s   %s  %s\n",
			a.ID, a.ShipID, res.LogicalTime, res.Final(), a.PlanEnd, estEnd, riskBand(res.Final()))
	}

	// Drill into the riskiest avail, as an SME reviewing drivers would.
	worst := rows[0]
	fmt.Printf("\nDRILL-DOWN: avail %d (%s)\n", worst.avail.ID, riskBand(worst.res.Final()))
	fmt.Println("delay trajectory over planned duration:")
	for _, e := range worst.res.Estimates {
		fmt.Printf("  at %5.1f%%: raw %7.1f   fused %7.1f days\n", e.Timestamp, e.Raw, e.Fused)
	}
	fmt.Println("top-5 contributing features:")
	for i, d := range worst.res.TopDrivers {
		fmt.Printf("  %d. %-40s value %.1f\n", i+1, d.Name, d.Value)
	}
}
