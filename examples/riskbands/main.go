// Risk bands: extends the paper's point estimates to schedule-risk
// intervals. Three boosters trained under the pinball loss at τ = 0.1, 0.5
// and 0.9 estimate the 10th/50th/90th-percentile Days of Maintenance Delay
// for every ongoing avail at 50% planned duration — the numbers a planner
// needs to price risk at ≈$250k per delay-day (paper §1).
package main

import (
	"fmt"
	"log"
	"sort"

	"domd/internal/domain"
	"domd/internal/featsel"
	"domd/internal/features"
	"domd/internal/index"
	"domd/internal/ml"
	"domd/internal/ml/gbt"
	"domd/internal/ml/loss"
	"domd/internal/navsim"
	"domd/internal/split"
	"domd/internal/statusq"
)

func main() {
	log.SetFlags(0)

	cfg := navsim.DefaultConfig()
	cfg.NumClosed = 120
	cfg.NumOngoing = 6
	cfg.MeanRCCsPerAvail = 120
	ds, err := navsim.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ext := features.NewExtractor()
	tensor, err := features.BuildTensor(ext, ds.Avails, ds.RCCsByAvail(), 25, index.KindAVL)
	if err != nil {
		log.Fatal(err)
	}
	sp, err := split.Make(split.DefaultConfig(), tensor.Avails)
	if err != nil {
		log.Fatal(err)
	}

	// Work at the 50% slice (index 2 on a 25% grid: 0,25,50,75,100).
	const sliceIdx = 2
	train := tensor.Slices[sliceIdx].Subset(append(append([]int(nil), sp.Train...), sp.Val...))

	// Pearson top-60 dynamics + the 8 statics, as the selected pipeline does.
	dynCols := make([]int, train.NumCols()-features.NumStatic)
	for j := range dynCols {
		dynCols[j] = features.NumStatic + j
	}
	selected, err := (featsel.Pearson{}).Select(train.Select(dynCols), 60)
	if err != nil {
		log.Fatal(err)
	}
	cols := make([]int, 0, features.NumStatic+len(selected))
	for j := 0; j < features.NumStatic; j++ {
		cols = append(cols, j)
	}
	for _, j := range selected {
		cols = append(cols, features.NumStatic+j)
	}
	sort.Ints(cols)
	fitSet := train.Select(cols)

	// One booster per quantile.
	params := gbt.DefaultParams()
	params.NumRounds = 120
	quantiles := []float64{0.1, 0.5, 0.9}
	models := make([]ml.Model, len(quantiles))
	for qi, tau := range quantiles {
		pb, err := loss.NewPinball(tau)
		if err != nil {
			log.Fatal(err)
		}
		models[qi], err = gbt.Fit(params, pb, fitSet)
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("DELAY RISK BANDS at 50% planned duration ($0.25M per delay-day)")
	fmt.Println("avail  ship    P10    P50    P90   cost range (P10..P90)")
	for i := range ds.Avails {
		a := &ds.Avails[i]
		if a.Status != domain.StatusOngoing {
			continue
		}
		eng, err := statusq.NewEngine(a, ds.RCCsByAvail()[a.ID], index.KindAVL)
		if err != nil {
			log.Fatal(err)
		}
		full, err := ext.Vector(eng, 50)
		if err != nil {
			log.Fatal(err)
		}
		x := make([]float64, len(cols))
		for k, c := range cols {
			x[k] = full[c]
		}
		p10 := models[0].Predict(x)
		p50 := models[1].Predict(x)
		p90 := models[2].Predict(x)
		// Enforce monotonicity (independent models can cross slightly).
		if p50 < p10 {
			p10, p50 = p50, p10
		}
		if p90 < p50 {
			p50, p90 = p90, p50
		}
		fmt.Printf("%5d  %5d  %5.0f  %5.0f  %5.0f   $%.1fM – $%.1fM\n",
			a.ID, a.ShipID, p10, p50, p90,
			max0(p10)*0.25, max0(p90)*0.25)
	}
	fmt.Println("\nP50 is the point estimate the paper's pipeline reports;")
	fmt.Println("P90 is the budgeting number: the delay cost exceeded only 1 time in 10.")
}

func max0(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}
