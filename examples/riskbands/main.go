// Risk bands: extends the paper's point estimates to schedule-risk
// intervals, two ways. Act one trains three boosters under the pinball
// loss at τ = 0.1, 0.5 and 0.9 to estimate the 10th/50th/90th-percentile
// Days of Maintenance Delay for every ongoing avail at 50% planned
// duration — the numbers a planner needs to price risk at ≈$250k per
// delay-day (paper §1). Act two gets distribution-free bands the
// production way: it publishes a split-conformal model version into a
// model registry, mounts the real serving handler with it, and reads the
// same avails' bands back over live GET /predict calls — the
// `domd train` + `domd serve -model-dir` path in miniature.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"

	"domd/internal/core"
	"domd/internal/domain"
	"domd/internal/featsel"
	"domd/internal/features"
	"domd/internal/fusion"
	"domd/internal/index"
	"domd/internal/ml"
	"domd/internal/ml/gbt"
	"domd/internal/ml/loss"
	"domd/internal/modelserve"
	"domd/internal/navsim"
	"domd/internal/server"
	"domd/internal/split"
	"domd/internal/statusq"
)

func main() {
	log.SetFlags(0)

	cfg := navsim.DefaultConfig()
	cfg.NumClosed = 120
	cfg.NumOngoing = 6
	cfg.MeanRCCsPerAvail = 120
	ds, err := navsim.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ext := features.NewExtractor()
	tensor, err := features.BuildTensor(ext, ds.Avails, ds.RCCsByAvail(), 25, index.KindAVL)
	if err != nil {
		log.Fatal(err)
	}
	sp, err := split.Make(split.DefaultConfig(), tensor.Avails)
	if err != nil {
		log.Fatal(err)
	}

	// Work at the 50% slice (index 2 on a 25% grid: 0,25,50,75,100).
	const sliceIdx = 2
	train := tensor.Slices[sliceIdx].Subset(append(append([]int(nil), sp.Train...), sp.Val...))

	// Pearson top-60 dynamics + the 8 statics, as the selected pipeline does.
	dynCols := make([]int, train.NumCols()-features.NumStatic)
	for j := range dynCols {
		dynCols[j] = features.NumStatic + j
	}
	selected, err := (featsel.Pearson{}).Select(train.Select(dynCols), 60)
	if err != nil {
		log.Fatal(err)
	}
	cols := make([]int, 0, features.NumStatic+len(selected))
	for j := 0; j < features.NumStatic; j++ {
		cols = append(cols, j)
	}
	for _, j := range selected {
		cols = append(cols, features.NumStatic+j)
	}
	sort.Ints(cols)
	fitSet := train.Select(cols)

	// One booster per quantile.
	params := gbt.DefaultParams()
	params.NumRounds = 120
	quantiles := []float64{0.1, 0.5, 0.9}
	models := make([]ml.Model, len(quantiles))
	for qi, tau := range quantiles {
		pb, err := loss.NewPinball(tau)
		if err != nil {
			log.Fatal(err)
		}
		models[qi], err = gbt.Fit(params, pb, fitSet)
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("DELAY RISK BANDS at 50% planned duration ($0.25M per delay-day)")
	fmt.Println("avail  ship    P10    P50    P90   cost range (P10..P90)")
	for i := range ds.Avails {
		a := &ds.Avails[i]
		if a.Status != domain.StatusOngoing {
			continue
		}
		eng, err := statusq.NewEngine(a, ds.RCCsByAvail()[a.ID], index.KindAVL)
		if err != nil {
			log.Fatal(err)
		}
		full, err := ext.Vector(eng, 50)
		if err != nil {
			log.Fatal(err)
		}
		x := make([]float64, len(cols))
		for k, c := range cols {
			x[k] = full[c]
		}
		p10 := models[0].Predict(x)
		p50 := models[1].Predict(x)
		p90 := models[2].Predict(x)
		// Enforce monotonicity (independent models can cross slightly).
		if p50 < p10 {
			p10, p50 = p50, p10
		}
		if p90 < p50 {
			p50, p90 = p90, p50
		}
		fmt.Printf("%5d  %5d  %5.0f  %5.0f  %5.0f   $%.1fM – $%.1fM\n",
			a.ID, a.ShipID, p10, p50, p90,
			max0(p10)*0.25, max0(p90)*0.25)
	}
	fmt.Println("\nP50 is the point estimate the paper's pipeline reports;")
	fmt.Println("P90 is the budgeting number: the delay cost exceeded only 1 time in 10.")

	if err := serveConformalBands(ds, ext, tensor, sp); err != nil {
		log.Fatal(err)
	}
}

// serveConformalBands is act two: publish a conformally calibrated model
// version into a registry directory, mount server.New over it, and read
// each ongoing avail's 80% band back over GET /predict — the live-serving
// counterpart of the quantile table above, with a coverage guarantee
// instead of a quantile fit.
func serveConformalBands(ds *navsim.Dataset, ext *features.Extractor, tensor *features.Tensor, sp split.Splits) error {
	cfg := core.BaselineConfig()
	cfg.Fusion = fusion.MethodAverage
	params := gbt.DefaultParams()
	params.NumRounds = 60
	cfg.GBTParams = &params

	tv, err := modelserve.TrainVersion(tensor, sp.Train, sp.Val, modelserve.TrainOptions{
		Windows: []modelserve.Window{{Lo: 0, Hi: 50}, {Lo: 50, Hi: 100}},
		Alpha:   0.2, // 80% bands, comparable to the P10..P90 table
		Version: "riskbands-demo",
		Config:  cfg,
	})
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "riskbands-models-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	if _, err := tv.WriteTo(dir, true); err != nil {
		return err
	}
	reg, err := modelserve.Open(dir)
	if err != nil {
		return err
	}

	// The full selected pipeline for point estimates, plus the registry —
	// the same wiring as `domd serve -model-dir`.
	pipe, err := core.Train(cfg, tensor, sp.Train, sp.Val)
	if err != nil {
		return err
	}
	catalog, err := statusq.NewCatalog(ds.Avails, ds.RCCs, index.KindAVL)
	if err != nil {
		return err
	}
	srv := httptest.NewServer(server.New(pipe, ext, catalog, server.Options{Models: reg}))
	defer srv.Close()

	fmt.Println("\nCONFORMAL 80% BANDS from live GET /predict (version riskbands-demo)")
	fmt.Println("avail   band_lo  predicted  band_hi  window")
	for i := range ds.Avails {
		a := &ds.Avails[i]
		if a.Status != domain.StatusOngoing {
			continue
		}
		url := fmt.Sprintf("%s/predict?avail=%d&date=%s", srv.URL, a.ID, a.PhysicalTime(50))
		resp, err := http.Get(url)
		if err != nil {
			return err
		}
		var row struct {
			PredictedDelay *float64 `json:"predicted_delay"`
			BandLo         *float64 `json:"band_lo"`
			BandHi         *float64 `json:"band_hi"`
			Window         *struct{ Lo, Hi float64 }
			Unavailable    bool   `json:"prediction_unavailable"`
			Reason         string `json:"unavailable_reason"`
		}
		err = json.NewDecoder(resp.Body).Decode(&row)
		if cerr := resp.Body.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		if row.Unavailable || row.PredictedDelay == nil {
			return fmt.Errorf("avail %d: prediction unavailable: %s", a.ID, row.Reason)
		}
		win := ""
		if row.Window != nil {
			win = fmt.Sprintf("%.0f-%.0f%%", row.Window.Lo, row.Window.Hi)
		}
		fmt.Printf("%5d   %7.0f  %9.0f  %7.0f  %s\n",
			a.ID, *row.BandLo, *row.PredictedDelay, *row.BandHi, win)
	}
	fmt.Println("\nUnlike the quantile fit, the conformal band carries a finite-sample")
	fmt.Println("coverage guarantee (≥80% marginal, assuming exchangeability); see")
	fmt.Println("docs/PREDICTION.md for the semantics and caveats.")
	return nil
}

func max0(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}
