#!/bin/sh
# check_docs.sh — fails the build when docs/OPERATIONS.md rots.
#
# The operator reference must track the code, so this script extracts the
# machine-checkable facts from the sources and greps for each in the doc:
#
#   1. every endpoint row of server.Endpoints() ("METHOD /path"),
#   2. every `domd serve` flag (runServe plus the shared addCommon set),
#   3. every faultinject failpoint name,
#   4. the README link to the operations doc,
#   5. every served path and every `domd` subcommand in README.md — the
#      README's tour of the API surface may lag the code no more than
#      the operations doc may.
#
# Metric-name agreement is NOT checked here anymore: the domdlint
# `metriccatalog` analyzer walks the type-checked registration sites and
# enforces both directions (undocumented metric, stale doc row) with
# file:line findings — `make docs` runs it alongside this script.
#
# Run via `make docs` (part of `make check`). Stdlib-shell only: POSIX
# sh, grep, sed, awk.
set -eu

cd "$(dirname "$0")/.."
DOC=docs/OPERATIONS.md
fail=0

[ -f "$DOC" ] || { echo "check_docs: $DOC missing"; exit 1; }

# 1. Endpoints: rows of the Endpoints() table in internal/server/obs.go.
endpoints=$(sed -n 's/^[[:space:]]*{"\([A-Z]*\)", "\(\/[a-z\/]*\)".*/\1 \2/p' internal/server/obs.go)
[ -n "$endpoints" ] || { echo "check_docs: extracted no endpoints from internal/server/obs.go"; exit 1; }
for e in $(printf '%s\n' "$endpoints" | tr ' ' '~'); do
	pat=$(printf '%s' "$e" | tr '~' ' ')
	if ! grep -qF "$pat" "$DOC"; then
		echo "check_docs: endpoint \"$pat\" (server.Endpoints) not documented in $DOC"
		fail=1
	fi
done

# 2. Serve flags: names declared inside runServe, plus the common set.
serve_flags=$(awk '/^func runServe\(/,/^}/' cmd/domd/main.go |
	sed -n 's/.*fs\.[A-Za-z0-9]*("\([a-z-]*\)".*/\1/p')
common_flags=$(awk '/^func addCommon\(/,/^}/' cmd/domd/main.go |
	sed -n 's/.*fs\.[A-Za-z0-9]*Var(&[^,]*, "\([a-z-]*\)".*/\1/p')
[ -n "$serve_flags" ] || { echo "check_docs: extracted no serve flags from cmd/domd/main.go"; exit 1; }
[ -n "$common_flags" ] || { echo "check_docs: extracted no common flags from cmd/domd/main.go"; exit 1; }
for f in $serve_flags $common_flags; do
	if ! grep -q -- "\`-$f\`" "$DOC"; then
		echo "check_docs: serve flag -$f not documented in $DOC"
		fail=1
	fi
done

# 3. Failpoint names: Fail* constants in wal and statusq.
failpoints=$(grep -rho 'Fail[A-Za-z]* = "[a-z.]*"' internal/wal/ internal/statusq/ |
	sed 's/.*= "\(.*\)"/\1/' | sort -u)
[ -n "$failpoints" ] || { echo "check_docs: extracted no failpoint names"; exit 1; }
for fp in $failpoints; do
	if ! grep -qF "$fp" "$DOC"; then
		echo "check_docs: failpoint $fp not documented in $DOC"
		fail=1
	fi
done

# 4. The README must point operators at the doc.
if ! grep -q "docs/OPERATIONS.md" README.md; then
	echo "check_docs: README.md does not link docs/OPERATIONS.md"
	fail=1
fi

# 5. README surface drift: every served path (from the same Endpoints()
# table) and every `domd` subcommand (from the dispatch table in
# cmd/domd/main.go) must be mentioned somewhere in the README.
paths=$(printf '%s\n' "$endpoints" | awk '{print $2}' | sort -u)
for p in $paths; do
	if ! grep -qF "$p" README.md; then
		echo "check_docs: endpoint path $p (server.Endpoints) not mentioned in README.md"
		fail=1
	fi
done
subcommands=$(awk '/^var subcommands = /,/^}$/' cmd/domd/main.go |
	sed -n 's/^[[:space:]]*{"\([a-z]*\)", .*/\1/p')
[ -n "$subcommands" ] || { echo "check_docs: extracted no subcommands from cmd/domd/main.go"; exit 1; }
for s in $subcommands; do
	if ! grep -q "domd $s" README.md; then
		echo "check_docs: subcommand \"domd $s\" not mentioned in README.md"
		fail=1
	fi
done

if [ "$fail" -ne 0 ]; then
	echo "check_docs: FAILED — update docs/OPERATIONS.md to match the code"
	exit 1
fi
echo "check_docs: OK"
