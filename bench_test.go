// Package domd's root benchmark suite regenerates every table and figure of
// the paper's evaluation as a testing.B benchmark (see DESIGN.md §4 for the
// experiment index). Data generation and feature extraction are performed
// once per input size and cached; each benchmark iteration measures only the
// work the corresponding artifact reports.
//
// Benchmark inputs are scaled down from the paper's full workload so the
// whole suite completes in minutes; `cmd/experiments` runs the full-size
// versions.
package domd_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"domd/internal/core"
	"domd/internal/domain"
	"domd/internal/experiments"
	"domd/internal/featsel"
	"domd/internal/features"
	"domd/internal/fusion"
	"domd/internal/index"
	"domd/internal/ml/gbt"
	"domd/internal/ml/linear"
	"domd/internal/ml/loss"
	"domd/internal/navsim"
	"domd/internal/stats"
	"domd/internal/statusq"
)

// --- cached fixtures -------------------------------------------------------

var (
	dataOnce sync.Once
	baseData *navsim.Dataset

	workloadOnce sync.Once
	workload     *experiments.Workload
)

// benchData is the scalability base dataset (1x ≈ 8k RCCs).
func benchData(b *testing.B) *navsim.Dataset {
	b.Helper()
	dataOnce.Do(func() {
		ds, err := navsim.Generate(navsim.Config{
			NumClosed: 80, NumOngoing: 4, MeanRCCsPerAvail: 100, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		baseData = ds
	})
	return baseData
}

// benchWorkload is the modeling workload (tensor + splits).
func benchWorkload(b *testing.B) *experiments.Workload {
	b.Helper()
	workloadOnce.Do(func() {
		w, err := experiments.NewWorkload(navsim.Config{
			NumClosed: 60, NumOngoing: 0, MeanRCCsPerAvail: 80, Seed: 1,
		}, 20)
		if err != nil {
			b.Fatal(err)
		}
		p := gbt.DefaultParams()
		p.NumRounds = 25
		p.LearningRate = 0.2
		w.DesignGBT = p
		w.Runs = 1 // single split redraw: benches time one run
		workload = w
	})
	return workload
}

func trainCurve(b *testing.B, cfg core.Config) []float64 {
	b.Helper()
	w := benchWorkload(b)
	p, err := core.Train(cfg, w.Tensor, w.Splits.Train, w.Splits.Val)
	if err != nil {
		b.Fatal(err)
	}
	reports, err := p.EvaluateRows(w.Tensor, w.Splits.Val)
	if err != nil {
		b.Fatal(err)
	}
	out := make([]float64, len(reports))
	for i, r := range reports {
		out[i] = r.MAE
	}
	return out
}

func baselineCfg(b *testing.B) core.Config {
	w := benchWorkload(b)
	cfg := core.BaselineConfig()
	cfg.GBTParams = &w.DesignGBT
	return cfg
}

// --- Fig. 2 / Table 5: dataset --------------------------------------------

func BenchmarkFig2DelayDistribution(b *testing.B) {
	ds := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		delays := ds.Delays()
		if _, _, err := stats.Histogram(delays, 20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5DatasetStats(b *testing.B) {
	ds := benchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := experiments.Table5(ds)
		if len(t.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

// --- Fig. 5a / Table 6: index creation ------------------------------------

// scaledIntervals caches the logical-interval projection per scale factor.
var (
	scaledMu  sync.Mutex
	scaledIvs = map[int][]experiments.LogicalInterval{}
)

func intervalsAt(b *testing.B, factor int) []experiments.LogicalInterval {
	b.Helper()
	scaledMu.Lock()
	defer scaledMu.Unlock()
	if ivs, ok := scaledIvs[factor]; ok {
		return ivs
	}
	ds, err := navsim.Scale(benchData(b), factor)
	if err != nil {
		b.Fatal(err)
	}
	ivs := experiments.ProjectLogical(ds)
	scaledIvs[factor] = ivs
	return ivs
}

func rawIntervals(ivs []experiments.LogicalInterval) []index.Interval {
	raw := make([]index.Interval, len(ivs))
	for i := range ivs {
		raw[i] = ivs[i].Interval
	}
	return raw
}

func benchCreation(b *testing.B, kind index.Kind, factor int) {
	raw := rawIntervals(intervalsAt(b, factor))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx, err := index.Build(kind, raw)
		if err != nil {
			b.Fatal(err)
		}
		idx.CreatedBy(-1 << 62) // charge the naive design's lazy sort
	}
}

func BenchmarkFig5aIndexCreation(b *testing.B) {
	for _, factor := range []int{1, 5, 10} {
		for _, kind := range index.Kinds() {
			b.Run(fmt.Sprintf("%s/%dx", kind, factor), func(b *testing.B) {
				benchCreation(b, kind, factor)
			})
		}
	}
}

func BenchmarkTable6IndexMemory(b *testing.B) {
	for _, kind := range index.Kinds() {
		b.Run(string(kind), func(b *testing.B) {
			raw := rawIntervals(intervalsAt(b, 5))
			var mem int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx, err := index.Build(kind, raw)
				if err != nil {
					b.Fatal(err)
				}
				mem = idx.MemoryBytes()
			}
			b.ReportMetric(float64(mem)/(1<<20), "MB")
		})
	}
}

// --- Fig. 5b / 5c: query processing ----------------------------------------

func builtIndex(b *testing.B, kind index.Kind, factor int) index.TimeIndex {
	b.Helper()
	idx, err := index.Build(kind, rawIntervals(intervalsAt(b, factor)))
	if err != nil {
		b.Fatal(err)
	}
	return idx
}

func BenchmarkFig5bQueryProcessing(b *testing.B) {
	const factor = 5
	ivs := intervalsAt(b, factor)
	for _, kind := range index.Kinds() {
		b.Run(string(kind), func(b *testing.B) {
			idx := builtIndex(b, kind, factor)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if kind == index.KindAVL {
					experiments.SweepIncremental(idx, ivs, 10)
				} else {
					experiments.SweepScratch(idx, ivs, 10)
				}
			}
		})
	}
}

func BenchmarkFig5cTotalTime(b *testing.B) {
	const factor = 5
	ivs := intervalsAt(b, factor)
	for _, kind := range index.Kinds() {
		b.Run(string(kind), func(b *testing.B) {
			raw := rawIntervals(ivs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx, err := index.Build(kind, raw)
				if err != nil {
					b.Fatal(err)
				}
				if kind == index.KindAVL {
					experiments.SweepIncremental(idx, ivs, 10)
				} else {
					experiments.SweepScratch(idx, ivs, 10)
				}
			}
		})
	}
}

// --- Fig. 6a: feature selection --------------------------------------------

func BenchmarkFig6aFeatureSelection(b *testing.B) {
	w := benchWorkload(b)
	slice := w.Tensor.Slices[len(w.Tensor.Slices)/2].Subset(w.Splits.Train)
	dynCols := make([]int, slice.NumCols()-features.NumStatic)
	for j := range dynCols {
		dynCols[j] = features.NumStatic + j
	}
	dyn := slice.Select(dynCols)
	selectors := map[string]featsel.Selector{
		featsel.MethodPearson:  featsel.Pearson{},
		featsel.MethodSpearman: featsel.Spearman{},
		featsel.MethodMutual:   featsel.MutualInfo{Bins: 8},
		featsel.MethodRandom:   &featsel.Random{Seed: 1},
	}
	for name, sel := range selectors {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sel.Select(dyn, 60); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run(featsel.MethodRFE, func(b *testing.B) {
		p := gbt.DefaultParams()
		p.NumRounds = 10
		p.MaxDepth = 3
		sel := &featsel.RFE{Trainer: gbt.NewTrainer(p, nil), Step: 0.5}
		for i := 0; i < b.N; i++ {
			if _, err := sel.Select(dyn, 60); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Fig. 6b: base model families ------------------------------------------

func BenchmarkFig6bBaseModel(b *testing.B) {
	b.Run("xgboost", func(b *testing.B) {
		cfg := baselineCfg(b)
		for i := 0; i < b.N; i++ {
			trainCurve(b, cfg)
		}
	})
	b.Run("elasticnet", func(b *testing.B) {
		cfg := baselineCfg(b)
		cfg.Family = core.FamilyElasticNet
		for i := 0; i < b.N; i++ {
			trainCurve(b, cfg)
		}
	})
}

// --- Fig. 6c: stacking -------------------------------------------------------

func BenchmarkFig6cStacking(b *testing.B) {
	for _, stacked := range []bool{false, true} {
		name := "non-stacked"
		if stacked {
			name = "stacked"
		}
		b.Run(name, func(b *testing.B) {
			cfg := baselineCfg(b)
			cfg.Stacked = stacked
			for i := 0; i < b.N; i++ {
				trainCurve(b, cfg)
			}
		})
	}
}

// --- Fig. 6d: loss functions -------------------------------------------------

func BenchmarkFig6dLoss(b *testing.B) {
	for _, l := range []string{"l2", "l1", "pseudohuber"} {
		b.Run(l, func(b *testing.B) {
			cfg := baselineCfg(b)
			cfg.Loss = l
			if l == "pseudohuber" {
				cfg.LossDelta = loss.PaperDelta
			}
			for i := 0; i < b.N; i++ {
				trainCurve(b, cfg)
			}
		})
	}
}

// --- Fig. 6e: HPT trials -------------------------------------------------------

func BenchmarkFig6eHPTTrials(b *testing.B) {
	for _, trials := range []int{10, 30} {
		b.Run(fmt.Sprintf("trials=%d", trials), func(b *testing.B) {
			cfg := baselineCfg(b)
			cfg.HPTTrials = trials
			cfg.HPTMethod = "tpe"
			for i := 0; i < b.N; i++ {
				trainCurve(b, cfg)
			}
		})
	}
}

// --- Fig. 6f: fusion -----------------------------------------------------------

func BenchmarkFig6fFusion(b *testing.B) {
	for _, f := range fusion.Methods() {
		b.Run(f, func(b *testing.B) {
			cfg := baselineCfg(b)
			cfg.Fusion = f
			for i := 0; i < b.N; i++ {
				trainCurve(b, cfg)
			}
		})
	}
}

// --- Table 7: final test evaluation ---------------------------------------------

func BenchmarkTable7TestEvaluation(b *testing.B) {
	w := benchWorkload(b)
	cfg := core.DefaultConfig()
	cfg.HPTTrials = 0
	cfg.GBTParams = &w.DesignGBT
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Table7(w, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- supporting micro-benchmarks (substrate costs) ------------------------------

func BenchmarkFeatureExtractionPerAvailTimestamp(b *testing.B) {
	ds := benchData(b)
	ext := features.NewExtractor()
	a := &ds.Avails[0]
	eng, err := statusq.NewEngine(a, ds.RCCsByAvail()[a.ID], index.KindAVL)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ext.Vector(eng, 50); err != nil {
			b.Fatal(err)
		}
	}
}

// table5Data caches the Table-5-scale dataset (≈200 avails × 53k RCCs) the
// tensor-build benchmarks share.
var (
	table5Once sync.Once
	table5Data *navsim.Dataset
)

func table5ScaleData(b *testing.B) *navsim.Dataset {
	b.Helper()
	table5Once.Do(func() {
		ds, err := navsim.Generate(navsim.Config{
			NumClosed: 200, NumOngoing: 0, MeanRCCsPerAvail: 265, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		table5Data = ds
	})
	return table5Data
}

// BenchmarkBuildTensorSerialVsParallel measures the full feature-tensor
// build (transformation 𝒯) at the paper's Table-5 scale with gap x=5:
// the pre-sweep from-scratch reference, the incremental sweep on one
// worker, and the sweep fanned over GOMAXPROCS workers.
func BenchmarkBuildTensorSerialVsParallel(b *testing.B) {
	ds := table5ScaleData(b)
	byAvail := ds.RCCsByAvail()
	ext := features.NewExtractor()
	const gap = 5.0
	b.Logf("avails=%d rccs=%d gomaxprocs=%d", len(ds.Avails), len(ds.RCCs), runtime.GOMAXPROCS(0))
	b.Run("scratch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := features.BuildTensorScratch(ext, ds.Avails, byAvail, gap, index.KindAVL); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sweep-serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := features.BuildTensorOpt(ext, ds.Avails, byAvail, gap, index.KindAVL, features.TensorOptions{Workers: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sweep-parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := features.BuildTensorOpt(ext, ds.Avails, byAvail, gap, index.KindAVL, features.TensorOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// bigAvailFixture builds one avail holding n synthetic RCCs for the
// per-avail sweep benchmarks.
func bigAvailFixture(b *testing.B, n int) (*domain.Avail, []domain.RCC) {
	b.Helper()
	rng := benchRand(uint64(n))
	a := &domain.Avail{ID: 1, Status: domain.StatusClosed,
		PlanStart: 0, PlanEnd: 400, ActStart: 0, ActEnd: 480}
	rccs := make([]domain.RCC, n)
	for i := range rccs {
		created := domain.Day(rng.next() % 450)
		rccs[i] = domain.RCC{
			ID: i + 1, AvailID: 1,
			Type:    domain.RCCType(rng.next() % domain.NumRCCTypes),
			SWLIN:   int(rng.next() % 100_000_000),
			Created: created,
			Settled: created + domain.Day(rng.next()%90),
			Amount:  float64(rng.next()%1_000_000) / 10,
		}
	}
	return a, rccs
}

// benchRand is a tiny deterministic PRNG (splitmix64) so fixture cost stays
// negligible at large n.
type splitmix struct{ s uint64 }

func benchRand(seed uint64) *splitmix { return &splitmix{s: seed*0x9E3779B97F4A7C15 + 1} }

func (r *splitmix) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4B5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// BenchmarkCellSweepVsScratch isolates the Status Query state maintenance
// behind one avail's timestamp grid (x=5 ⇒ 21 points): from-scratch dense
// grid fills versus one incremental CellSweep advanced across the grid. The
// scratch cost grows with total RCCs at every grid point; the sweep's
// per-advance cost tracks only the events inside each window (plus the live
// active set), so doubling n roughly doubles the whole-grid sweep time while
// the scratch path pays the doubling at all 21 points.
func BenchmarkCellSweepVsScratch(b *testing.B) {
	grid := features.TimestampGrid(5)
	for _, n := range []int{8_000, 32_000} {
		a, rccs := bigAvailFixture(b, n)
		b.Run(fmt.Sprintf("scratch/n=%d", n), func(b *testing.B) {
			eng, err := statusq.NewEngine(a, rccs, index.KindAVL)
			if err != nil {
				b.Fatal(err)
			}
			var gs statusq.GridSet
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, ts := range grid {
					if err := eng.CellGridsAt(ts, &gs); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("sweep/n=%d", n), func(b *testing.B) {
			sw, err := statusq.NewCellSweep(a, rccs)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sw.Reset()
				for _, ts := range grid {
					if err := sw.AdvanceTo(ts); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkDynamicVectorInto verifies the zero-allocation contract of the
// sweep-backed feature evaluation: advancing plus evaluating all 1452
// generated features must allocate nothing beyond the caller's dst.
func BenchmarkDynamicVectorInto(b *testing.B) {
	a, rccs := bigAvailFixture(b, 8_000)
	ext := features.NewExtractor()
	sw, err := statusq.NewCellSweep(a, rccs)
	if err != nil {
		b.Fatal(err)
	}
	grid := features.TimestampGrid(5)
	dst := make([]float64, ext.NumDynamic())
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := i % len(grid)
		if k == 0 {
			sw.Reset()
		}
		if err := ext.DynamicVectorInto(dst, sw, grid[k]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGBTFit(b *testing.B) {
	w := benchWorkload(b)
	slice := w.Tensor.Slices[0].Subset(w.Splits.Train)
	sel, err := (featsel.Pearson{}).Select(slice, 60)
	if err != nil {
		b.Fatal(err)
	}
	d := slice.Select(sel)
	p := gbt.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gbt.Fit(p, loss.Squared{}, d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkElasticNetFit(b *testing.B) {
	w := benchWorkload(b)
	slice := w.Tensor.Slices[0].Subset(w.Splits.Train)
	sel, err := (featsel.Pearson{}).Select(slice, 60)
	if err != nil {
		b.Fatal(err)
	}
	d := slice.Select(sel)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := linear.Fit(linear.DefaultParams(), d); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (design choices called out in DESIGN.md) ---------------

// BenchmarkAblationBulkVsIncrementalLoad quantifies the bulk-load fast path
// versus n incremental inserts for the tree indexes.
func BenchmarkAblationBulkVsIncrementalLoad(b *testing.B) {
	raw := rawIntervals(intervalsAt(b, 1))
	for _, kind := range []index.Kind{index.KindAVL, index.KindInterval} {
		b.Run(string(kind)+"/bulk", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := index.Build(kind, raw); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(string(kind)+"/incremental", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				idx, err := index.New(kind)
				if err != nil {
					b.Fatal(err)
				}
				for j := range raw {
					if err := idx.Insert(raw[j]); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkAblationCountVsRetrieve contrasts the AVL's O(log n) rank-based
// cardinality query with materializing the id set — the reason aggregate-only
// Status Queries skip retrieval.
func BenchmarkAblationCountVsRetrieve(b *testing.B) {
	idx := builtIndex(b, index.KindAVL, 5)
	b.Run("count", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx.CountActiveAt(5000)
		}
	})
	b.Run("retrieve", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx.ActiveAt(5000)
		}
	})
}

// BenchmarkAblationParallelTraining measures the Workers knob on pipeline
// training (per-timestamp models are independent).
func BenchmarkAblationParallelTraining(b *testing.B) {
	w := benchWorkload(b)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := baselineCfg(b)
			cfg.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := core.Train(cfg, w.Tensor, w.Splits.Train, w.Splits.Val); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationIncrementalSweepStep isolates the per-step cost of the
// incremental Status Query advance versus a full recomputation at one
// timestamp.
func BenchmarkAblationIncrementalSweepStep(b *testing.B) {
	ivs := intervalsAt(b, 5)
	idx := builtIndex(b, index.KindAVL, 5)
	b.Run("incremental-window", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx.CreatedIn(4000, 5000)
		}
	})
	b.Run("scratch-prefix", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			idx.CreatedBy(5000)
		}
	})
	_ = ivs
}

// BenchmarkAblationTreeMethod contrasts exact greedy split finding with the
// histogram ("hist") method on the selected 60-feature training slice.
func BenchmarkAblationTreeMethod(b *testing.B) {
	w := benchWorkload(b)
	slice := w.Tensor.Slices[0].Subset(w.Splits.Train)
	sel, err := (featsel.Pearson{}).Select(slice, 60)
	if err != nil {
		b.Fatal(err)
	}
	d := slice.Select(sel)
	for _, method := range []string{"exact", "hist"} {
		b.Run(method, func(b *testing.B) {
			p := gbt.DefaultParams()
			p.TreeMethod = method
			for i := 0; i < b.N; i++ {
				if _, err := gbt.Fit(p, loss.Squared{}, d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSortedVsAVL quantifies how much of the AVL's tree
// machinery the DoMD workload needs: the flat sorted-array design has the
// best constants for a build-once/query-many workload but pays O(n) for
// mutation.
func BenchmarkAblationSortedVsAVL(b *testing.B) {
	raw := rawIntervals(intervalsAt(b, 5))
	for _, kind := range []index.Kind{index.KindAVL, index.KindSorted} {
		b.Run(string(kind)+"/build", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := index.Build(kind, raw); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(string(kind)+"/count", func(b *testing.B) {
			idx, err := index.Build(kind, raw)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx.CountActiveAt(5000)
			}
		})
	}
}
