module domd

go 1.22
