// Command experiments regenerates the paper's tables and figures on the
// synthetic NMD. Run one artifact with -exp, or everything with -exp all.
//
//	experiments -exp fig5a
//	experiments -exp table7 -quick
//	experiments -exp all -quick
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"domd/internal/core"
	"domd/internal/experiments"
	"domd/internal/ml/gbt"
	"domd/internal/navsim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	exp := flag.String("exp", "all", "artifact id: fig2 table5 fig5a fig5b fig5c table6 tensor fig6a fig6b fig6c fig6d fig6e fig6f table7, or all")
	workers := flag.Int("workers", 0, "tensor-build worker pool size (0 = GOMAXPROCS)")
	quick := flag.Bool("quick", false, "reduced dataset and grids (minutes → seconds)")
	seed := flag.Int64("seed", 1, "generation seed")
	flag.Parse()

	dataCfg := navsim.DefaultConfig()
	dataCfg.Seed = *seed
	scaleFactors := []int{1, 5, 10, 15, 20}
	gap := 10.0
	ks := []int{20, 30, 40, 50, 60, 70, 80, 90, 100}
	trialGrid := []int{10, 20, 30, 40, 50, 100, 200}
	if *quick {
		dataCfg.NumClosed = 60
		dataCfg.MeanRCCsPerAvail = 80
		scaleFactors = []int{1, 5, 10}
		gap = 20
		ks = []int{20, 60, 100}
		trialGrid = []int{10, 30}
	}

	want := func(id string) bool { return *exp == "all" || *exp == id }
	ran := false

	// --- Data artifacts.
	if want("fig2") || want("table5") {
		ds, err := navsim.Generate(dataCfg)
		if err != nil {
			log.Fatal(err)
		}
		if want("table5") {
			fmt.Println(experiments.Table5(ds))
			ran = true
		}
		if want("fig2") {
			t, err := experiments.Fig2(ds, 20)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(t)
			ran = true
		}
	}

	// --- Scalability artifacts.
	if want("fig5a") || want("fig5b") || want("fig5c") || want("table6") {
		ds, err := navsim.Generate(dataCfg)
		if err != nil {
			log.Fatal(err)
		}
		ms, err := experiments.RunScalability(ds, scaleFactors, gap)
		if err != nil {
			log.Fatal(err)
		}
		if want("fig5a") {
			fmt.Println(experiments.Fig5a(ms))
			ran = true
		}
		if want("table6") {
			fmt.Println(experiments.Table6(ms))
			ran = true
		}
		if want("fig5b") {
			fmt.Println(experiments.Fig5b(ms))
			ran = true
		}
		if want("fig5c") {
			fmt.Println(experiments.Fig5c(ms))
			ran = true
		}
	}

	// --- Tensor-build scalability (extension: the Fig. 5 protocol applied
	// to the full feature transformation 𝒯 instead of raw index sweeps).
	if want("tensor") {
		ds, err := navsim.Generate(dataCfg)
		if err != nil {
			log.Fatal(err)
		}
		factors := scaleFactors
		if len(factors) > 3 && !*quick {
			factors = factors[:3] // scratch reference is quadratic-ish; cap the sweep
		}
		ms, err := experiments.RunTensorScalability(ds, factors, gap, *workers)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.TensorScaleTable(ms))
		ran = true
	}

	// --- Modeling artifacts (the two ablation-* ids are extensions beyond
	// the paper; "all" includes them).
	modeling := []string{"fig6a", "fig6b", "fig6c", "fig6d", "fig6e", "fig6f", "fig6f-ext", "ablation-stacking", "table7"}
	needModeling := false
	for _, id := range modeling {
		if want(id) {
			needModeling = true
		}
	}
	if needModeling {
		w, err := experiments.NewWorkload(dataCfg, gap)
		if err != nil {
			log.Fatal(err)
		}
		w.Seed = *seed
		if *quick {
			p := gbt.DefaultParams()
			p.NumRounds = 20
			p.LearningRate = 0.25
			w.DesignGBT = p
			w.Runs = 1 // quick mode skips the 3-run averaging
		}
		run := func(id string, fn func() (*experiments.Table, error)) {
			if !want(id) {
				return
			}
			t, err := fn()
			if err != nil {
				log.Fatalf("%s: %v", id, err)
			}
			fmt.Println(t)
			ran = true
		}
		run("fig6a", func() (*experiments.Table, error) { return experiments.Fig6a(w, nil, ks) })
		run("fig6b", func() (*experiments.Table, error) { return experiments.Fig6b(w) })
		run("fig6c", func() (*experiments.Table, error) { return experiments.Fig6c(w) })
		run("fig6d", func() (*experiments.Table, error) { return experiments.Fig6d(w) })
		run("fig6e", func() (*experiments.Table, error) { return experiments.Fig6e(w, trialGrid) })
		run("fig6f", func() (*experiments.Table, error) { return experiments.Fig6f(w) })
		run("fig6f-ext", func() (*experiments.Table, error) { return experiments.Fig6fExt(w) })
		run("ablation-stacking", func() (*experiments.Table, error) { return experiments.AblationStacking(w) })
		run("table7", func() (*experiments.Table, error) {
			cfg := core.DefaultConfig()
			if *quick {
				cfg.HPTTrials = 10
			}
			t, _, err := experiments.Table7(w, cfg)
			return t, err
		})
	}

	if !ran {
		log.Fatalf("unknown experiment %q (valid: fig2 table5 fig5a fig5b fig5c table6 tensor %s all)",
			*exp, strings.Join(modeling, " "))
	}
}
