// Command navsim generates a synthetic Navy Maintenance Database (avail and
// RCC tables) as CSV, optionally applying the CUI-style obfuscation stage.
//
// Usage:
//
//	navsim -out data/ [-closed 187] [-ongoing 6] [-rccs 283] [-seed 1]
//	       [-scale 1] [-obfuscate] [-obf-seed 42]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"domd/internal/domain"
	"domd/internal/navsim"
	"domd/internal/obfuscate"
	"domd/internal/table"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("navsim: ")

	out := flag.String("out", "data", "output directory for avails.csv and rccs.csv")
	closed := flag.Int("closed", 187, "number of closed avails")
	ongoing := flag.Int("ongoing", 6, "number of ongoing avails")
	rccs := flag.Float64("rccs", 283, "mean RCCs per avail")
	seed := flag.Int64("seed", 1, "generation seed")
	scale := flag.Int("scale", 1, "x-fold RCC scaling factor (temporal distribution preserved)")
	obf := flag.Bool("obfuscate", false, "apply the CUI obfuscation stage before writing")
	obfSeed := flag.Int64("obf-seed", 42, "obfuscation key seed")
	keyPath := flag.String("key", "", "write the obfuscation key (JSON) to this path")
	flag.Parse()

	ds, err := navsim.Generate(navsim.Config{
		NumClosed: *closed, NumOngoing: *ongoing,
		MeanRCCsPerAvail: *rccs, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *scale > 1 {
		ds, err = navsim.Scale(ds, *scale)
		if err != nil {
			log.Fatal(err)
		}
	}

	avails, rccRows := ds.Avails, ds.RCCs
	if *obf {
		key := obfuscate.NewKey(*obfSeed)
		o, err := obfuscate.New(key)
		if err != nil {
			log.Fatal(err)
		}
		avails, rccRows = o.Apply(avails, rccRows)
		if *keyPath != "" {
			f, err := os.Create(*keyPath)
			if err != nil {
				log.Fatal(err)
			}
			if err := obfuscate.SaveKey(f, key); err != nil {
				f.Close() //lint:ignore droppederr best-effort close; the SaveKey failure is already fatal
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	if err := writeCSV(filepath.Join(*out, "avails.csv"), func(f *os.File) error {
		return table.WriteAvails(f, avails)
	}); err != nil {
		log.Fatal(err)
	}
	if err := writeCSV(filepath.Join(*out, "rccs.csv"), func(f *os.File) error {
		return table.WriteRCCs(f, rccRows)
	}); err != nil {
		log.Fatal(err)
	}

	closedCount := 0
	for i := range avails {
		if avails[i].Status == domain.StatusClosed {
			closedCount++
		}
	}
	fmt.Printf("wrote %s: %d avails (%d closed), %d RCCs (obfuscated=%v)\n",
		*out, len(avails), closedCount, len(rccRows), *obf)
}

func writeCSV(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close() //lint:ignore droppederr best-effort close; the write error is being returned
		return err
	}
	return f.Close()
}
