// loadgen.go implements `domd loadgen`: a closed-loop load generator for
// the serving stack, built to measure the incremental-ingest tentpole —
// what happens to warm-avail query latency when RCCs stream in while
// queries are being answered.
//
// In self-serve mode (the default) it trains a fast pipeline, generates a
// serving fleet with -serve-rccs RCCs per avail, mounts the real
// server.New handler on a loopback listener, and drives the same mixed
// workload twice: once with the catalog's O(delta) ingest path disabled
// (every ingest invalidates the cached engine — the rebuild storm) and
// once enabled. Client-side latency percentiles per operation class,
// server-side /metrics deltas (engine builds, delta applies/fallbacks,
// request-duration histogram percentiles), and a micro-benchmark of
// Engine.ApplyRCC-then-query versus NewEngine-then-query are written to
// -out (BENCH_6.json) and echoed as "BENCH <name> <value>" lines.
//
// Against an external server (-addr) it runs a single scenario and skips
// the A/B toggle and the micro-benchmark, which need in-process access.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"domd/internal/core"
	"domd/internal/domain"
	"domd/internal/features"
	"domd/internal/fusion"
	"domd/internal/index"
	"domd/internal/ml/gbt"
	"domd/internal/modelserve"
	"domd/internal/navsim"
	"domd/internal/obs"
	"domd/internal/server"
	"domd/internal/split"
	"domd/internal/statusq"
	"domd/internal/wal"
)

// loadgenConfig carries the `domd loadgen` flags.
type loadgenConfig struct {
	addr       string
	scenario   string
	duration   time.Duration
	clients    int
	serveRCCs  int
	shards     int
	seed       int64
	microIters int
	out        string
}

// opLatencies collects client-side durations per operation class.
type opLatencies struct {
	mu     sync.Mutex
	byOp   map[string][]float64 // milliseconds
	errors int
}

func (l *opLatencies) add(op string, ms float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.byOp[op] = append(l.byOp[op], ms)
}

func (l *opLatencies) fail() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.errors++
}

// opReport is the per-operation-class summary written to the report.
type opReport struct {
	Count  int     `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// scenarioReport is one workload run (delta path on or off).
type scenarioReport struct {
	Name       string              `json:"name"`
	DeltaApply bool                `json:"delta_apply"`
	Errors     int                 `json:"errors"`
	Ops        map[string]opReport `json:"ops"`
	// Metrics are server-side /metrics deltas across the run.
	Metrics map[string]float64 `json:"metrics"`
	// QueryP95ServerMS is the /query p95 estimated from the server's
	// request-duration histogram buckets (client-side percentiles above
	// include network and client scheduling).
	QueryP95ServerMS float64 `json:"query_p95_server_ms"`
	// PredictP95ServerMS is the /predict p95 from the same histograms;
	// ModelP95MS is the model-evaluation slice of it
	// (domd_predict_duration_seconds, no HTTP or engine lookup).
	PredictP95ServerMS float64 `json:"predict_p95_server_ms,omitempty"`
	ModelP95MS         float64 `json:"model_p95_ms,omitempty"`
	// Swaps counts the hot-swaps the scenario performed mid-flight.
	Swaps int `json:"swaps,omitempty"`
}

// microReport is the in-process ingest-then-query micro-benchmark.
type microReport struct {
	RCCsPerAvail int     `json:"rccs_per_avail"`
	Iters        int     `json:"iters"`
	ApplyNsOp    float64 `json:"apply_plus_query_ns_per_op"`
	RebuildNsOp  float64 `json:"rebuild_plus_query_ns_per_op"`
	Speedup      float64 `json:"speedup"`
}

// shardRunReport summarizes one direct-drive run of the shard-scaling
// scenario against an N-shard durable catalog.
type shardRunReport struct {
	Shards      int     `json:"shards"`
	Workers     int     `json:"workers"`
	DurationSec float64 `json:"duration_sec"`
	Ingests     int64   `json:"ingests"`
	Queries     int64   `json:"queries"`
	// ShardAvails is how many ongoing avails the ring placed on each
	// shard — the workload's actual spread.
	ShardAvails   []int   `json:"shard_avails"`
	IngestsPerSec float64 `json:"ingests_per_sec"`
	OpsPerSec     float64 `json:"ops_per_sec"`
}

// loadgenReport is the BENCH_6.json / BENCH_7.json document.
type loadgenReport struct {
	GeneratedBy string           `json:"generated_by"`
	Config      map[string]any   `json:"config"`
	Scenarios   []scenarioReport `json:"scenarios,omitempty"`
	Micro       *microReport     `json:"micro,omitempty"`
	// ShardRuns holds the shard-scaling scenario's runs (1 shard, then
	// -shards shards); ShardThroughputSpeedup is the headline aggregate
	// ingest+query ops/sec ratio between them.
	ShardRuns              []shardRunReport `json:"shard_runs,omitempty"`
	ShardThroughputSpeedup float64          `json:"shard_throughput_speedup,omitempty"`
	// PostIngestQuerySpeedup is the headline ratio: warm-avail
	// post-ingest query cost on the rebuild path over the delta path,
	// from the in-process micro-benchmark.
	PostIngestQuerySpeedup float64 `json:"post_ingest_query_speedup,omitempty"`
	// StormQueryP95Ratio compares the /query p95 between the
	// rebuild-storm and delta scenarios (server-side histograms).
	StormQueryP95Ratio float64 `json:"storm_query_p95_ratio,omitempty"`
}

func runLoadgen(args []string) {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	cfg := loadgenConfig{}
	fs.StringVar(&cfg.addr, "addr", "", "target server base URL (empty: self-serve a synthetic fleet in-process)")
	fs.StringVar(&cfg.scenario, "scenario", "delta", "workload scenario: delta (HTTP A/B of the O(delta) ingest path), shards (direct-drive shard-scaling of the durable catalog), or predict (prediction serving under rolling hot-swaps)")
	fs.DurationVar(&cfg.duration, "duration", 3*time.Second, "wall-clock length of each workload scenario")
	fs.IntVar(&cfg.clients, "clients", 4, "closed-loop client goroutines")
	fs.IntVar(&cfg.serveRCCs, "serve-rccs", 1500, "mean RCCs per served avail in self-serve mode")
	fs.IntVar(&cfg.shards, "shards", 4, "shard count compared against a single shard by -scenario shards")
	fs.Int64Var(&cfg.seed, "seed", 1, "random seed (dataset and workload)")
	fs.IntVar(&cfg.microIters, "micro-iters", 200, "iterations of the apply-vs-rebuild micro-benchmark")
	fs.StringVar(&cfg.out, "out", "", "report output path (default BENCH_6.json; BENCH_7.json for -scenario shards, BENCH_10.json for -scenario predict)")
	parseFlags(fs, args)
	if cfg.out == "" {
		switch cfg.scenario {
		case "shards":
			cfg.out = "BENCH_7.json"
		case "predict":
			cfg.out = "BENCH_10.json"
		default:
			cfg.out = "BENCH_6.json"
		}
	}
	report, err := loadgen(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := writeLoadgenReport(cfg.out, report); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", cfg.out)
}

// loadgen runs the whole harness and assembles the report; split from
// runLoadgen so tests can call it without flag parsing or log.Fatal.
func loadgen(cfg loadgenConfig) (*loadgenReport, error) {
	switch cfg.scenario {
	case "", "delta":
	case "shards":
		return shardScaling(cfg)
	case "predict":
		return predictLoadgen(cfg)
	default:
		return nil, fmt.Errorf("loadgen: unknown -scenario %q (want delta, shards, or predict)", cfg.scenario)
	}
	report := &loadgenReport{
		GeneratedBy: "domd loadgen",
		Config: map[string]any{
			"duration":   cfg.duration.String(),
			"clients":    cfg.clients,
			"serve_rccs": cfg.serveRCCs,
			"seed":       cfg.seed,
		},
	}

	if cfg.addr != "" {
		// External target: one scenario, no toggles, no micro-bench.
		sc, err := runScenario(cfg.addr, "external", true, nil, cfg)
		if err != nil {
			return nil, err
		}
		report.Scenarios = append(report.Scenarios, *sc)
		emitBench(report)
		return report, nil
	}

	pipe, ext, err := fastPipeline(cfg.seed)
	if err != nil {
		return nil, fmt.Errorf("loadgen: train pipeline: %w", err)
	}
	serve, err := navsim.Generate(navsim.Config{
		NumClosed: 4, NumOngoing: 3, MeanRCCsPerAvail: float64(cfg.serveRCCs), Seed: cfg.seed + 1,
	})
	if err != nil {
		return nil, fmt.Errorf("loadgen: serving fleet: %w", err)
	}
	catalog, err := statusq.NewCatalog(serve.Avails, serve.RCCs, index.KindAVL)
	if err != nil {
		return nil, err
	}
	handler := server.New(pipe, ext, catalog, server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: handler}
	srvErr := make(chan error, 1)
	go func() { srvErr <- srv.Serve(ln) }()
	defer func() {
		if err := srv.Close(); err != nil {
			log.Printf("loadgen server close: %v", err)
		}
		if err := <-srvErr; err != nil && err != http.ErrServerClosed {
			log.Printf("loadgen server: %v", err)
		}
	}()
	base := "http://" + ln.Addr().String()

	// The rebuild storm first (delta path off), then the delta path, with
	// a warm-up between so each scenario starts from built engines.
	for _, mode := range []struct {
		name  string
		delta bool
	}{{"rebuild-storm", false}, {"delta", true}} {
		catalog.SetDeltaApply(mode.delta)
		sc, err := runScenario(base, mode.name, mode.delta, serve, cfg)
		if err != nil {
			return nil, err
		}
		report.Scenarios = append(report.Scenarios, *sc)
	}

	micro, err := runMicro(serve, cfg)
	if err != nil {
		return nil, err
	}
	report.Micro = micro
	report.PostIngestQuerySpeedup = micro.Speedup
	if len(report.Scenarios) == 2 && report.Scenarios[1].QueryP95ServerMS > 0 {
		report.StormQueryP95Ratio = report.Scenarios[0].QueryP95ServerMS / report.Scenarios[1].QueryP95ServerMS
	}
	emitBench(report)
	return report, nil
}

// fastPipeline trains the same small training configuration the serving
// test suite uses: a baseline GBT with few rounds over a compact closed
// fleet — quick to train, fully exercises the query path.
func fastPipeline(seed int64) (*core.Pipeline, *features.Extractor, error) {
	pipe, ext, _, _, err := fastStack(seed)
	return pipe, ext, err
}

// fastStack is fastPipeline plus the tensor and splits it trained from,
// for scenarios that also need to publish model artifacts.
func fastStack(seed int64) (*core.Pipeline, *features.Extractor, *features.Tensor, split.Splits, error) {
	ds, err := navsim.Generate(navsim.Config{NumClosed: 40, NumOngoing: 3, MeanRCCsPerAvail: 40, Seed: seed})
	if err != nil {
		return nil, nil, nil, split.Splits{}, err
	}
	ext := features.NewExtractor()
	tensor, err := features.BuildTensor(ext, ds.Avails, ds.RCCsByAvail(), 25, index.KindAVL)
	if err != nil {
		return nil, nil, nil, split.Splits{}, err
	}
	sp, err := split.Make(split.DefaultConfig(), tensor.Avails)
	if err != nil {
		return nil, nil, nil, split.Splits{}, err
	}
	cfg := fastTrainConfig()
	pipe, err := core.Train(cfg, tensor, sp.Train, sp.Val)
	if err != nil {
		return nil, nil, nil, split.Splits{}, err
	}
	return pipe, ext, tensor, sp, nil
}

// fastTrainConfig is the compact GBT configuration every loadgen
// training run shares.
func fastTrainConfig() core.Config {
	cfg := core.BaselineConfig()
	cfg.Fusion = fusion.MethodAverage
	p := gbt.DefaultParams()
	p.NumRounds = 15
	p.LearningRate = 0.3
	cfg.GBTParams = &p
	return cfg
}

// nextRCCID hands out process-unique ingest ids far above any generated
// dataset's id space.
var nextRCCID atomic.Int64

func init() { nextRCCID.Store(9_000_000) }

// fetchOngoing lists the target's ongoing avails via GET /avails, so the
// workload works identically against self-served and external targets.
func fetchOngoing(base string) ([]domain.Avail, error) {
	resp, err := http.Get(base + "/avails")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: GET /avails: status %d", resp.StatusCode)
	}
	var rows []struct {
		ID        int    `json:"id"`
		Status    string `json:"status"`
		PlanStart string `json:"plan_start"`
		PlanEnd   string `json:"plan_end"`
		ActStart  string `json:"actual_start"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		return nil, err
	}
	var out []domain.Avail
	for _, r := range rows {
		if r.Status != domain.StatusOngoing.String() {
			continue
		}
		ps, err := domain.ParseDay(r.PlanStart)
		if err != nil {
			return nil, err
		}
		pe, err := domain.ParseDay(r.PlanEnd)
		if err != nil {
			return nil, err
		}
		as, err := domain.ParseDay(r.ActStart)
		if err != nil {
			return nil, err
		}
		out = append(out, domain.Avail{ID: r.ID, Status: domain.StatusOngoing, PlanStart: ps, PlanEnd: pe, ActStart: as})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("loadgen: target serves no ongoing avails")
	}
	return out, nil
}

// runScenario drives the closed-loop mixed workload against base for
// cfg.duration and summarizes client latencies plus /metrics deltas.
// serve may be nil (external mode); ongoing avails are always discovered
// over the API.
func runScenario(base, name string, delta bool, serve *navsim.Dataset, cfg loadgenConfig) (*scenarioReport, error) {
	ongoing, err := fetchOngoing(base)
	if err != nil {
		return nil, err
	}
	// Warm-up: one query per ongoing avail builds (or rebuilds) engines so
	// the measured window starts warm.
	for _, a := range ongoing {
		if err := doQuery(&http.Client{}, base, &a, 60); err != nil {
			return nil, fmt.Errorf("loadgen: warm-up query avail %d: %w", a.ID, err)
		}
	}

	before, err := scrape(base)
	if err != nil {
		return nil, err
	}
	lat := &opLatencies{byOp: map[string][]float64{}}
	deadline := time.Now().Add(cfg.duration)
	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(c)*7919))
			client := &http.Client{}
			for op := 0; time.Now().Before(deadline); op++ {
				a := ongoing[rng.Intn(len(ongoing))]
				ts := 20 + rng.Float64()*70
				var kind string
				var err error
				start := time.Now()
				switch {
				case op%8 == 7:
					kind = "ingest"
					err = doIngest(client, base, &a, rng)
				case op%32 == 13:
					kind = "fleet"
					err = doFleet(client, base, &a)
				default:
					kind = "query"
					err = doQuery(client, base, &a, ts)
				}
				if err != nil {
					lat.fail()
					continue
				}
				lat.add(kind, float64(time.Since(start).Microseconds())/1000)
			}
		}(c)
	}
	wg.Wait()
	after, err := scrape(base)
	if err != nil {
		return nil, err
	}

	sc := &scenarioReport{
		Name:       name,
		DeltaApply: delta,
		Errors:     lat.errors,
		Ops:        map[string]opReport{},
		Metrics: map[string]float64{
			"engine_builds":     after["domd_engine_builds_total"] - before["domd_engine_builds_total"],
			"delta_applies":     after["domd_engine_delta_applies_total"] - before["domd_engine_delta_applies_total"],
			"delta_fallbacks":   sumSeries(after, "domd_engine_delta_fallbacks_total{") - sumSeries(before, "domd_engine_delta_fallbacks_total{"),
			"requests":          sumSeries(after, "domd_http_requests_total{") - sumSeries(before, "domd_http_requests_total{"),
			"stale_serves":      after["domd_engine_stale_serves_total"] - before["domd_engine_stale_serves_total"],
			"engine_cache_hits": after["domd_engine_cache_hits_total"] - before["domd_engine_cache_hits_total"],
		},
		QueryP95ServerMS: histPercentile(before, after, "domd_http_request_duration_seconds", "/query", 0.95) * 1000,
	}
	for op, samples := range lat.byOp {
		sc.Ops[op] = summarize(samples)
	}
	return sc, nil
}

func doQuery(client *http.Client, base string, a *domain.Avail, ts float64) error {
	url := fmt.Sprintf("%s/query?avail=%d&date=%s", base, a.ID, a.PhysicalTime(ts))
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	return drain(resp, http.StatusOK)
}

func doFleet(client *http.Client, base string, a *domain.Avail) error {
	url := fmt.Sprintf("%s/fleet?date=%s", base, a.PhysicalTime(60))
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	return drain(resp, http.StatusOK)
}

func doIngest(client *http.Client, base string, a *domain.Avail, rng *rand.Rand) error {
	id := nextRCCID.Add(1)
	created := a.PhysicalTime(20 + rng.Float64()*40)
	settled := a.PhysicalTime(65 + rng.Float64()*30)
	body := fmt.Sprintf(
		`{"id":%d,"avail_id":%d,"type":"G","swlin":"434-11-00%d","created":%q,"settled":%q,"amount":%d.5}`,
		id, a.ID, 1+rng.Intn(9), created.String(), settled.String(), 100+rng.Intn(5000))
	resp, err := client.Post(base+"/rccs", "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	return drain(resp, http.StatusCreated)
}

// drain consumes and closes the response body (keep-alive reuse) and
// checks the status.
func drain(resp *http.Response, want int) error {
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		if cerr := resp.Body.Close(); cerr != nil {
			return cerr
		}
		return err
	}
	if err := resp.Body.Close(); err != nil {
		return err
	}
	if resp.StatusCode != want {
		return fmt.Errorf("status %d, want %d", resp.StatusCode, want)
	}
	return nil
}

// scrape fetches and parses /metrics.
func scrape(base string) (map[string]float64, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: GET /metrics: status %d", resp.StatusCode)
	}
	return obs.ParseText(resp.Body)
}

// sumSeries sums every series of a labeled metric family (keys carry
// rendered labels, e.g. `name{reason="nocache"}`).
func sumSeries(m map[string]float64, prefix string) float64 {
	var sum float64
	for k, v := range m {
		if strings.HasPrefix(k, prefix) {
			sum += v
		}
	}
	return sum
}

// histPercentile estimates a percentile from the before/after delta of a
// cumulative histogram's buckets for one route label.
func histPercentile(before, after map[string]float64, family, route string, q float64) float64 {
	return histPercentilePrefix(before, after, fmt.Sprintf(`%s_bucket{route=%q,le="`, family, route), q)
}

// histPercentileUnlabeled is histPercentile for a histogram family with
// no labels beyond le.
func histPercentileUnlabeled(before, after map[string]float64, family string, q float64) float64 {
	return histPercentilePrefix(before, after, family+`_bucket{le="`, q)
}

func histPercentilePrefix(before, after map[string]float64, prefix string, q float64) float64 {
	type bucket struct {
		le    float64
		count float64
	}
	var buckets []bucket
	for k, v := range after {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		leStr := strings.TrimSuffix(strings.TrimPrefix(k, prefix), `"}`)
		le, err := parseLe(leStr)
		if err != nil {
			continue
		}
		buckets = append(buckets, bucket{le: le, count: v - before[k]})
	}
	if len(buckets) == 0 {
		return 0
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	total := buckets[len(buckets)-1].count
	if total <= 0 {
		return 0
	}
	// The quantile can land in the +Inf overflow bucket (every histogram
	// has one). +Inf is useless in a report; the honest answer is the
	// largest finite edge, reported as a lower bound.
	lastFinite := 0.0
	target := q * total
	for _, b := range buckets {
		if b.count >= target {
			if math.IsInf(b.le, 1) {
				break
			}
			return b.le
		}
		if !math.IsInf(b.le, 1) {
			lastFinite = b.le
		}
	}
	return lastFinite
}

func parseLe(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// summarize computes the percentile summary of one op class.
func summarize(samples []float64) opReport {
	if len(samples) == 0 {
		return opReport{}
	}
	sort.Float64s(samples)
	var sum float64
	for _, s := range samples {
		sum += s
	}
	return opReport{
		Count:  len(samples),
		MeanMS: sum / float64(len(samples)),
		P50MS:  percentileOf(samples, 0.50),
		P95MS:  percentileOf(samples, 0.95),
		P99MS:  percentileOf(samples, 0.99),
	}
}

// percentileOf reads the q-th percentile from an ascending-sorted slice.
func percentileOf(sorted []float64, q float64) float64 {
	idx := int(q*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// runMicro measures, in process, the two ways to absorb one ingest and
// answer the next warm query: Engine.ApplyRCC + Eval versus NewEngine
// over the extended history + Eval — the same comparison as the
// BenchmarkApplyRCC / BenchmarkRebuildAfterIngest pair, but reported into
// BENCH_6.json by an operator-runnable command.
func runMicro(serve *navsim.Dataset, cfg loadgenConfig) (*microReport, error) {
	byAvail := serve.RCCsByAvail()
	var target *domain.Avail
	for i := range serve.Avails {
		a := &serve.Avails[i]
		if a.Status != domain.StatusOngoing {
			continue
		}
		if target == nil || len(byAvail[a.ID]) > len(byAvail[target.ID]) {
			target = a
		}
	}
	if target == nil {
		return nil, fmt.Errorf("loadgen: no ongoing avail to micro-benchmark")
	}
	base := byAvail[target.ID]
	rng := rand.New(rand.NewSource(cfg.seed + 17))
	q := statusq.Query{Status: domain.Active, Agg: statusq.SumAmount}
	newRCC := func(id int) domain.RCC {
		return domain.RCC{
			ID: id, AvailID: target.ID, Type: domain.Growth,
			SWLIN:   43411001 + rng.Intn(9),
			Created: target.ActStart + domain.Day(rng.Intn(int(target.PlannedDuration()))),
			Settled: target.ActStart + domain.Day(int(target.PlannedDuration())+rng.Intn(100)),
			Amount:  float64(100 + rng.Intn(5000)),
		}
	}

	eng, err := statusq.NewEngine(target, base, index.KindAVL)
	if err != nil {
		return nil, err
	}
	applyStart := time.Now()
	for i := 0; i < cfg.microIters; i++ {
		if err := eng.ApplyRCC(newRCC(8_000_000 + i)); err != nil {
			return nil, err
		}
		if _, err := eng.Eval(60, q); err != nil {
			return nil, err
		}
	}
	applyNs := float64(time.Since(applyStart).Nanoseconds()) / float64(cfg.microIters)

	history := append([]domain.RCC(nil), base...)
	rebuildStart := time.Now()
	for i := 0; i < cfg.microIters; i++ {
		history = append(history, newRCC(8_500_000+i))
		reng, err := statusq.NewEngine(target, history, index.KindAVL)
		if err != nil {
			return nil, err
		}
		if _, err := reng.Eval(60, q); err != nil {
			return nil, err
		}
	}
	rebuildNs := float64(time.Since(rebuildStart).Nanoseconds()) / float64(cfg.microIters)

	return &microReport{
		RCCsPerAvail: len(base),
		Iters:        cfg.microIters,
		ApplyNsOp:    applyNs,
		RebuildNsOp:  rebuildNs,
		Speedup:      rebuildNs / applyNs,
	}, nil
}

// shardScaling measures how ingest+query throughput of the durable
// catalog tier scales with shard count. It drives ShardedCatalog
// directly — no HTTP, no ML evaluation — because the point is the
// tier's own ceiling: with -fsync always, a single shard serializes
// every acknowledgment behind one fsync, while N shards overlap N
// fsyncs. The same ingest-heavy closed-loop workload (15 ingests : 1
// engine query) runs over the same fleet, same WAL policy, same worker
// count at every power-of-two shard count from 1 up to -shards.
func shardScaling(cfg loadgenConfig) (*loadgenReport, error) {
	if cfg.shards < 2 {
		return nil, fmt.Errorf("loadgen: -scenario shards needs -shards >= 2, got %d", cfg.shards)
	}
	// Issuing N overlapping fdatasyncs needs N runnable Ps; on a small
	// host GOMAXPROCS would otherwise serialize syscall entry behind
	// sysmon's ~20µs P-retake and understate every multi-shard run.
	if want := cfg.shards + 2; runtime.GOMAXPROCS(0) < want {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(want))
	}
	fleet, err := navsim.Generate(navsim.Config{
		NumClosed: 4, NumOngoing: 48, MeanRCCsPerAvail: 60, Seed: cfg.seed + 2,
	})
	if err != nil {
		return nil, fmt.Errorf("loadgen: shard fleet: %w", err)
	}
	// The same worker count for both runs, sized so every shard of the
	// larger tier has queued work while another shard's fsync is in
	// flight.
	workers := cfg.clients
	if workers < 2*cfg.shards {
		workers = 2 * cfg.shards
	}
	report := &loadgenReport{
		GeneratedBy: "domd loadgen",
		Config: map[string]any{
			"scenario": "shards",
			"duration": cfg.duration.String(),
			"workers":  workers,
			"shards":   cfg.shards,
			"seed":     cfg.seed,
			"fsync":    "always",
		},
	}
	counts := []int{1}
	for n := 2; n < cfg.shards; n *= 2 {
		counts = append(counts, n)
	}
	counts = append(counts, cfg.shards)
	for _, n := range counts {
		run, err := driveShardTier(fleet, n, workers, cfg)
		if err != nil {
			return nil, err
		}
		report.ShardRuns = append(report.ShardRuns, run)
	}
	if base := report.ShardRuns[0].OpsPerSec; base > 0 {
		report.ShardThroughputSpeedup = report.ShardRuns[len(report.ShardRuns)-1].OpsPerSec / base
	}
	emitBench(report)
	return report, nil
}

// driveShardTier opens an n-shard durable catalog in a throwaway root
// and hammers it for cfg.duration with the closed-loop workload.
func driveShardTier(fleet *navsim.Dataset, n, workers int, cfg loadgenConfig) (shardRunReport, error) {
	root, err := os.MkdirTemp("", "domd-loadgen-shards-")
	if err != nil {
		return shardRunReport{}, err
	}
	defer os.RemoveAll(root) //lint:ignore droppederr best-effort cleanup of a throwaway temp root
	sc, _, err := statusq.OpenSharded(root, n, fleet.Avails, fleet.RCCs, index.KindAVL,
		statusq.DurableOptions{WAL: wal.Options{Policy: wal.SyncAlways}})
	if err != nil {
		return shardRunReport{}, err
	}
	defer sc.Close() //lint:ignore droppederr the run's numbers are already collected; close is cleanup

	byID := map[int]*domain.Avail{}
	for i := range fleet.Avails {
		byID[fleet.Avails[i].ID] = &fleet.Avails[i]
	}
	ongoing := sc.OngoingIDs()
	if len(ongoing) == 0 {
		return shardRunReport{}, fmt.Errorf("loadgen: shard fleet has no ongoing avails")
	}
	// Warm every engine so the measured window exercises the steady
	// state: delta-applied ingests and cached-engine evals, not builds.
	for _, id := range ongoing {
		if _, err := sc.Engine(id); err != nil {
			return shardRunReport{}, fmt.Errorf("loadgen: warm engine %d: %w", id, err)
		}
	}
	// Balanced routing: workers spread ops evenly over the shards that
	// own ongoing avails (a load balancer in front of a sharded tier
	// does the same), so the measurement is the tier's aggregate
	// ceiling, not whichever shard the ring happened to load most.
	spread := make([]int, n)
	perShard := make([][]int, n)
	for _, id := range ongoing {
		s := sc.ShardOf(id)
		spread[s]++
		perShard[s] = append(perShard[s], id)
	}
	var lanes [][]int
	for _, ids := range perShard {
		if len(ids) > 0 {
			lanes = append(lanes, ids)
		}
	}

	var ingests, queries atomic.Int64
	var firstErr atomic.Value
	q := statusq.Query{Status: domain.Active, Agg: statusq.SumAmount}
	deadline := time.Now().Add(cfg.duration)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(w)*104729))
			for op := 0; time.Now().Before(deadline); op++ {
				lane := lanes[(w+op)%len(lanes)]
				a := byID[lane[rng.Intn(len(lane))]]
				if op%16 == 15 {
					if _, err := sc.Eval(a.ID, 60, q); err != nil {
						firstErr.CompareAndSwap(nil, err)
						return
					}
					queries.Add(1)
					continue
				}
				id := int(nextRCCID.Add(1))
				rcc := domain.RCC{
					ID: id, AvailID: a.ID, Type: domain.Growth,
					SWLIN:   43411001 + rng.Intn(9),
					Created: a.ActStart + domain.Day(rng.Intn(int(a.PlannedDuration()))),
					Settled: a.ActStart + domain.Day(int(a.PlannedDuration())+rng.Intn(100)),
					Amount:  float64(100 + rng.Intn(5000)),
				}
				if _, err := sc.Ingest(fmt.Sprintf("lg-%d", id), rcc); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
				ingests.Add(1)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if err, ok := firstErr.Load().(error); ok {
		return shardRunReport{}, fmt.Errorf("loadgen: %d-shard run: %w", n, err)
	}
	in, qs := ingests.Load(), queries.Load()
	return shardRunReport{
		Shards:        n,
		Workers:       workers,
		DurationSec:   elapsed,
		Ingests:       in,
		Queries:       qs,
		ShardAvails:   spread,
		IngestsPerSec: float64(in) / elapsed,
		OpsPerSec:     float64(in+qs) / elapsed,
	}, nil
}

// predictLoadgen measures the prediction-serving tier under operator
// churn: it trains and publishes a model version, mounts the real
// server.New handler with a registry (`domd serve -model-dir` wiring),
// and drives a closed-loop /predict-heavy workload while a rollout
// goroutine publishes and hot-swaps a new version every few hundred
// milliseconds. The numbers that matter: /predict latency percentiles
// (client- and server-side), the model-evaluation slice of them, zero
// errors and zero prediction_unavailable answers across every swap.
func predictLoadgen(cfg loadgenConfig) (*loadgenReport, error) {
	if cfg.addr != "" {
		return nil, fmt.Errorf("loadgen: -scenario predict is self-serve only (it must publish versions into the registry directory)")
	}
	pipe, ext, tensor, sp, err := fastStack(cfg.seed)
	if err != nil {
		return nil, fmt.Errorf("loadgen: train pipeline: %w", err)
	}
	tv, err := modelserve.TrainVersion(tensor, sp.Train, sp.Val, modelserve.TrainOptions{
		Windows: []modelserve.Window{{Lo: 0, Hi: 50}, {Lo: 50, Hi: 100}},
		Alpha:   modelserve.DefaultAlpha,
		Version: "v001",
		Config:  fastTrainConfig(),
	})
	if err != nil {
		return nil, fmt.Errorf("loadgen: train model version: %w", err)
	}
	dir, err := os.MkdirTemp("", "domd-loadgen-models-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir) //lint:ignore droppederr best-effort cleanup of a throwaway temp root
	if _, err := tv.WriteTo(dir, true); err != nil {
		return nil, err
	}
	reg, err := modelserve.Open(dir)
	if err != nil {
		return nil, err
	}

	serve, err := navsim.Generate(navsim.Config{
		NumClosed: 4, NumOngoing: 3, MeanRCCsPerAvail: float64(cfg.serveRCCs), Seed: cfg.seed + 1,
	})
	if err != nil {
		return nil, fmt.Errorf("loadgen: serving fleet: %w", err)
	}
	catalog, err := statusq.NewCatalog(serve.Avails, serve.RCCs, index.KindAVL)
	if err != nil {
		return nil, err
	}
	handler := server.New(pipe, ext, catalog, server.Options{Models: reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: handler}
	srvErr := make(chan error, 1)
	go func() { srvErr <- srv.Serve(ln) }()
	defer func() {
		if err := srv.Close(); err != nil {
			log.Printf("loadgen server close: %v", err)
		}
		if err := <-srvErr; err != nil && err != http.ErrServerClosed {
			log.Printf("loadgen server: %v", err)
		}
	}()
	base := "http://" + ln.Addr().String()

	ongoing, err := fetchOngoing(base)
	if err != nil {
		return nil, err
	}
	for _, a := range ongoing {
		if err := doPredict(&http.Client{}, base, &a, 60); err != nil {
			return nil, fmt.Errorf("loadgen: warm-up predict avail %d: %w", a.ID, err)
		}
	}

	before, err := scrape(base)
	if err != nil {
		return nil, err
	}
	lat := &opLatencies{byOp: map[string][]float64{}}
	deadline := time.Now().Add(cfg.duration)
	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(c)*7919))
			client := &http.Client{}
			for op := 0; time.Now().Before(deadline); op++ {
				a := ongoing[rng.Intn(len(ongoing))]
				ts := 20 + rng.Float64()*70
				var kind string
				var err error
				start := time.Now()
				switch {
				case op%16 == 11:
					kind = "fleet"
					err = doFleet(client, base, &a)
				default:
					kind = "predict"
					err = doPredict(client, base, &a, ts)
				}
				if err != nil {
					lat.fail()
					continue
				}
				lat.add(kind, float64(time.Since(start).Microseconds())/1000)
			}
		}(c)
	}

	// The rollout loop: publish a cloned version (an operator rollout is
	// a manifest edit — the artifacts are already proven) and hot-swap it
	// while the readers run.
	swaps := 0
	swapErr := func() error {
		client := &http.Client{}
		for n := 2; time.Now().Before(deadline); n++ {
			man, err := modelserve.ReadManifest(dir)
			if err != nil {
				return err
			}
			active, ok := man.Version(man.Active)
			if !ok {
				return fmt.Errorf("loadgen: no active version to clone")
			}
			clone := *active
			clone.Version = fmt.Sprintf("v%03d", n)
			man.Versions = append(man.Versions, clone)
			man.Active = clone.Version
			if err := man.Write(dir); err != nil {
				return err
			}
			resp, err := client.Post(base+"/models/reload", "application/json", nil)
			if err != nil {
				return err
			}
			if err := drain(resp, http.StatusOK); err != nil {
				return fmt.Errorf("loadgen: reload %s: %w", clone.Version, err)
			}
			swaps++
			time.Sleep(200 * time.Millisecond)
		}
		return nil
	}()
	wg.Wait()
	if swapErr != nil {
		return nil, swapErr
	}
	after, err := scrape(base)
	if err != nil {
		return nil, err
	}

	sc := scenarioReport{
		Name:   "predict",
		Errors: lat.errors,
		Swaps:  swaps,
		Ops:    map[string]opReport{},
		Metrics: map[string]float64{
			"model_swaps":         after["domd_model_swaps_total"] - before["domd_model_swaps_total"],
			"model_loads":         after["domd_model_loads_total"] - before["domd_model_loads_total"],
			"model_load_failures": after["domd_model_load_failures_total"] - before["domd_model_load_failures_total"],
			"window_fallbacks":    after["domd_model_window_fallbacks_total"] - before["domd_model_window_fallbacks_total"],
			"predict_unavailable": after["domd_predict_unavailable_total"] - before["domd_predict_unavailable_total"],
			"requests":            sumSeries(after, "domd_http_requests_total{") - sumSeries(before, "domd_http_requests_total{"),
		},
		PredictP95ServerMS: histPercentile(before, after, "domd_http_request_duration_seconds", "/predict", 0.95) * 1000,
		ModelP95MS:         histPercentileUnlabeled(before, after, "domd_predict_duration_seconds", 0.95) * 1000,
	}
	for op, samples := range lat.byOp {
		sc.Ops[op] = summarize(samples)
	}
	report := &loadgenReport{
		GeneratedBy: "domd loadgen",
		Config: map[string]any{
			"scenario":   "predict",
			"duration":   cfg.duration.String(),
			"clients":    cfg.clients,
			"serve_rccs": cfg.serveRCCs,
			"seed":       cfg.seed,
		},
		Scenarios: []scenarioReport{sc},
	}
	emitBench(report)
	return report, nil
}

// doPredict issues one GET /predict and requires a clean 200.
func doPredict(client *http.Client, base string, a *domain.Avail, ts float64) error {
	url := fmt.Sprintf("%s/predict?avail=%d&date=%s", base, a.ID, a.PhysicalTime(ts))
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	return drain(resp, http.StatusOK)
}

// emitBench prints the headline numbers as "BENCH <name> <value>" lines.
func emitBench(r *loadgenReport) {
	for _, sc := range r.Scenarios {
		for op, s := range sc.Ops {
			fmt.Printf("BENCH loadgen/%s/%s_p95_ms %.3f\n", sc.Name, op, s.P95MS)
		}
		if sc.Name == "predict" {
			fmt.Printf("BENCH loadgen/predict/swaps %d\n", sc.Swaps)
			fmt.Printf("BENCH loadgen/predict/errors %d\n", sc.Errors)
			fmt.Printf("BENCH loadgen/predict/unavailable %.0f\n", sc.Metrics["predict_unavailable"])
			fmt.Printf("BENCH loadgen/predict/predict_p95_server_ms %.3f\n", sc.PredictP95ServerMS)
			fmt.Printf("BENCH loadgen/predict/model_p95_ms %.3f\n", sc.ModelP95MS)
			continue
		}
		fmt.Printf("BENCH loadgen/%s/engine_builds %.0f\n", sc.Name, sc.Metrics["engine_builds"])
		fmt.Printf("BENCH loadgen/%s/delta_applies %.0f\n", sc.Name, sc.Metrics["delta_applies"])
		fmt.Printf("BENCH loadgen/%s/query_p95_server_ms %.3f\n", sc.Name, sc.QueryP95ServerMS)
	}
	if r.Micro != nil {
		fmt.Printf("BENCH micro/apply_plus_query_ns %.0f\n", r.Micro.ApplyNsOp)
		fmt.Printf("BENCH micro/rebuild_plus_query_ns %.0f\n", r.Micro.RebuildNsOp)
		fmt.Printf("BENCH micro/post_ingest_query_speedup %.1f\n", r.Micro.Speedup)
	}
	if r.StormQueryP95Ratio > 0 {
		fmt.Printf("BENCH loadgen/storm_query_p95_ratio %.2f\n", r.StormQueryP95Ratio)
	}
	for _, run := range r.ShardRuns {
		fmt.Printf("BENCH shards/%d/ingests_per_sec %.0f\n", run.Shards, run.IngestsPerSec)
		fmt.Printf("BENCH shards/%d/ops_per_sec %.0f\n", run.Shards, run.OpsPerSec)
	}
	if r.ShardThroughputSpeedup > 0 {
		fmt.Printf("BENCH shards/throughput_speedup %.2f\n", r.ShardThroughputSpeedup)
	}
}

// writeLoadgenReport writes the JSON document.
func writeLoadgenReport(path string, r *loadgenReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		if cerr := f.Close(); cerr != nil {
			return cerr
		}
		return err
	}
	return f.Close()
}
