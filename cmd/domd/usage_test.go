package main

import (
	"os"
	"strings"
	"testing"

	"domd/internal/server"
)

// TestServeUsageAndOperationsDocAgree pins the anti-drift contract of
// the endpoint table: server.Endpoints() is the single source of truth,
// and both the `domd serve -h` usage text and docs/OPERATIONS.md must
// carry every row — pattern and operator description. (The mux side of
// the contract is enforced at construction: server.New panics when the
// table and the registered handlers disagree.)
func TestServeUsageAndOperationsDocAgree(t *testing.T) {
	usage := server.UsageText()
	raw, err := os.ReadFile("../../docs/OPERATIONS.md")
	if err != nil {
		t.Fatalf("operations doc: %v", err)
	}
	doc := string(raw)

	eps := server.Endpoints()
	if len(eps) == 0 {
		t.Fatal("server.Endpoints() is empty")
	}
	for _, e := range eps {
		pattern := e.Method + " " + e.Path
		if e.Params != "" {
			pattern += "?" + e.Params
		}
		if !strings.Contains(usage, pattern) {
			t.Errorf("serve -h usage text is missing endpoint %q", pattern)
		}
		if !strings.Contains(usage, e.Doc) {
			t.Errorf("serve -h usage text is missing the description of %q: %q", pattern, e.Doc)
		}
		if !strings.Contains(doc, pattern) {
			t.Errorf("docs/OPERATIONS.md is missing endpoint %q", pattern)
		}
		if !strings.Contains(doc, e.Doc) {
			t.Errorf("docs/OPERATIONS.md is missing the description of %q: %q", pattern, e.Doc)
		}
	}
}
