package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestLoadgenSmoke runs the whole self-serve harness at tiny settings:
// the report must materialize, parse, cover both scenarios, and show the
// delta ingest path beating the rebuild path on the micro-benchmark.
func TestLoadgenSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a pipeline and serves load")
	}
	cfg := loadgenConfig{
		duration:   300 * time.Millisecond,
		clients:    2,
		serveRCCs:  120,
		seed:       7,
		microIters: 10,
	}
	report, err := loadgen(cfg)
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}

	out := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := writeLoadgenReport(out, report); err != nil {
		t.Fatalf("writeLoadgenReport: %v", err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("read report: %v", err)
	}
	var parsed loadgenReport
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}

	if len(parsed.Scenarios) != 2 {
		t.Fatalf("scenarios = %d, want 2 (rebuild-storm, delta)", len(parsed.Scenarios))
	}
	storm, delta := parsed.Scenarios[0], parsed.Scenarios[1]
	if storm.Name != "rebuild-storm" || storm.DeltaApply {
		t.Errorf("scenario 0 = %q delta=%v, want rebuild-storm/false", storm.Name, storm.DeltaApply)
	}
	if delta.Name != "delta" || !delta.DeltaApply {
		t.Errorf("scenario 1 = %q delta=%v, want delta/true", delta.Name, delta.DeltaApply)
	}
	for _, sc := range parsed.Scenarios {
		if sc.Errors != 0 {
			t.Errorf("scenario %s: %d client errors", sc.Name, sc.Errors)
		}
		if sc.Ops["query"].Count == 0 {
			t.Errorf("scenario %s: no query samples", sc.Name)
		}
	}
	// The storm scenario must rebuild on ingest; the delta scenario must
	// delta-apply instead.
	if storm.Metrics["delta_applies"] != 0 {
		t.Errorf("rebuild-storm delta_applies = %v, want 0", storm.Metrics["delta_applies"])
	}
	if delta.Ops["ingest"].Count > 0 && delta.Metrics["delta_applies"] == 0 {
		t.Errorf("delta scenario ingested %d but delta_applies = 0", delta.Ops["ingest"].Count)
	}

	if parsed.Micro == nil {
		t.Fatal("micro benchmark missing from report")
	}
	if parsed.Micro.Speedup <= 1 {
		t.Errorf("post-ingest query speedup = %.2f, want > 1", parsed.Micro.Speedup)
	}
	if parsed.PostIngestQuerySpeedup != parsed.Micro.Speedup {
		t.Errorf("headline speedup %v != micro speedup %v",
			parsed.PostIngestQuerySpeedup, parsed.Micro.Speedup)
	}
}
