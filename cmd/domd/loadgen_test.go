package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestLoadgenSmoke runs the whole self-serve harness at tiny settings:
// the report must materialize, parse, cover both scenarios, and show the
// delta ingest path beating the rebuild path on the micro-benchmark.
func TestLoadgenSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a pipeline and serves load")
	}
	cfg := loadgenConfig{
		duration:   300 * time.Millisecond,
		clients:    2,
		serveRCCs:  120,
		seed:       7,
		microIters: 10,
	}
	report, err := loadgen(cfg)
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}

	out := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := writeLoadgenReport(out, report); err != nil {
		t.Fatalf("writeLoadgenReport: %v", err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("read report: %v", err)
	}
	var parsed loadgenReport
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}

	if len(parsed.Scenarios) != 2 {
		t.Fatalf("scenarios = %d, want 2 (rebuild-storm, delta)", len(parsed.Scenarios))
	}
	storm, delta := parsed.Scenarios[0], parsed.Scenarios[1]
	if storm.Name != "rebuild-storm" || storm.DeltaApply {
		t.Errorf("scenario 0 = %q delta=%v, want rebuild-storm/false", storm.Name, storm.DeltaApply)
	}
	if delta.Name != "delta" || !delta.DeltaApply {
		t.Errorf("scenario 1 = %q delta=%v, want delta/true", delta.Name, delta.DeltaApply)
	}
	for _, sc := range parsed.Scenarios {
		if sc.Errors != 0 {
			t.Errorf("scenario %s: %d client errors", sc.Name, sc.Errors)
		}
		if sc.Ops["query"].Count == 0 {
			t.Errorf("scenario %s: no query samples", sc.Name)
		}
	}
	// The storm scenario must rebuild on ingest; the delta scenario must
	// delta-apply instead.
	if storm.Metrics["delta_applies"] != 0 {
		t.Errorf("rebuild-storm delta_applies = %v, want 0", storm.Metrics["delta_applies"])
	}
	if delta.Ops["ingest"].Count > 0 && delta.Metrics["delta_applies"] == 0 {
		t.Errorf("delta scenario ingested %d but delta_applies = 0", delta.Ops["ingest"].Count)
	}

	if parsed.Micro == nil {
		t.Fatal("micro benchmark missing from report")
	}
	if parsed.Micro.Speedup <= 1 {
		t.Errorf("post-ingest query speedup = %.2f, want > 1", parsed.Micro.Speedup)
	}
	if parsed.PostIngestQuerySpeedup != parsed.Micro.Speedup {
		t.Errorf("headline speedup %v != micro speedup %v",
			parsed.PostIngestQuerySpeedup, parsed.Micro.Speedup)
	}
}

// histKey builds the metric-map key histPercentile scans for, matching
// the text-exposition form the /metrics scraper produces.
func histKey(family, route, le string) string {
	return fmt.Sprintf(`%s_bucket{route=%q,le="%s"}`, family, route, le)
}

func TestHistPercentile(t *testing.T) {
	const fam, route = "domd_http_request_duration_seconds", "/rccs"
	after := map[string]float64{
		histKey(fam, route, "0.005"): 10,
		histKey(fam, route, "0.05"):  90,
		histKey(fam, route, "0.5"):   99,
		histKey(fam, route, "+Inf"):  100,
	}
	if got := histPercentile(nil, after, fam, route, 0.5); got != 0.05 {
		t.Fatalf("p50 = %v, want 0.05", got)
	}
	if got := histPercentile(nil, after, fam, route, 0.95); got != 0.5 {
		t.Fatalf("p95 = %v, want 0.5", got)
	}
	// The p999 quantile lands in the +Inf overflow bucket. The report
	// must state the largest finite edge as a lower bound, never +Inf.
	if got := histPercentile(nil, after, fam, route, 0.999); got != 0.5 {
		t.Fatalf("p999 = %v, want largest finite edge 0.5", got)
	}
}

func TestHistPercentileAllOverflow(t *testing.T) {
	// Every observation landed beyond the last finite edge: finite
	// buckets are empty and only +Inf accumulated. Before the fix this
	// returned +Inf, which poisoned the JSON report (json.Marshal
	// rejects it).
	const fam, route = "domd_http_request_duration_seconds", "/query"
	after := map[string]float64{
		histKey(fam, route, "0.005"): 0,
		histKey(fam, route, "0.05"):  0,
		histKey(fam, route, "+Inf"):  7,
	}
	if got := histPercentile(nil, after, fam, route, 0.95); got != 0.05 {
		t.Fatalf("p95 = %v, want last finite edge 0.05", got)
	}
}

func TestHistPercentileEmpty(t *testing.T) {
	const fam, route = "domd_http_request_duration_seconds", "/fleet"
	if got := histPercentile(nil, map[string]float64{}, fam, route, 0.95); got != 0 {
		t.Fatalf("no buckets: got %v, want 0", got)
	}
	// Buckets exist but nothing was observed in the window (before ==
	// after): total is 0, percentile must be 0, not NaN or a divide
	// artifact.
	m := map[string]float64{
		histKey(fam, route, "0.05"): 42,
		histKey(fam, route, "+Inf"): 42,
	}
	if got := histPercentile(m, m, fam, route, 0.95); got != 0 {
		t.Fatalf("empty window: got %v, want 0", got)
	}
}

// TestShardScalingSmoke runs the shards scenario end to end at a tiny
// duration: the point is wiring (sweep shape, report fields, JSON
// output), not throughput numbers.
func TestShardScalingSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("drives fsync-per-ack ingest loops")
	}
	cfg := loadgenConfig{
		scenario: "shards",
		shards:   2,
		clients:  4,
		duration: 150 * time.Millisecond,
		seed:     7,
	}
	report, err := shardScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.ShardRuns) != 2 {
		t.Fatalf("got %d shard runs, want 2 (1 and 2 shards)", len(report.ShardRuns))
	}
	for i, want := range []int{1, 2} {
		run := report.ShardRuns[i]
		if run.Shards != want {
			t.Fatalf("run %d: shards = %d, want %d", i, run.Shards, want)
		}
		if run.Ingests == 0 {
			t.Fatalf("run %d: no ingests completed", i)
		}
		if len(run.ShardAvails) != want {
			t.Fatalf("run %d: spread over %d shards, want %d", i, len(run.ShardAvails), want)
		}
	}
	if report.ShardThroughputSpeedup <= 0 {
		t.Fatalf("speedup = %v, want > 0", report.ShardThroughputSpeedup)
	}
	out := filepath.Join(t.TempDir(), "bench.json")
	if err := writeLoadgenReport(out, report); err != nil {
		t.Fatal(err)
	}
	var parsed loadgenReport
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("shard report is not valid JSON: %v", err)
	}
}
