// Command domd is the DoMD estimation CLI: it loads the NMD tables (CSV, as
// written by cmd/navsim or exported from the Navy environment), trains the
// estimation pipeline, and answers DoMD queries, evaluates held-out quality,
// or runs the greedy pipeline design.
//
// Subcommands:
//
//	domd query    -avails a.csv -rccs r.csv -avail 188 -date 2023-06-01
//	domd evaluate -avails a.csv -rccs r.csv
//	domd design   -avails a.csv -rccs r.csv [-quick]
//	domd train    -avails a.csv -rccs r.csv -model-dir models
//	domd serve    -avails a.csv -rccs r.csv -model-dir models -addr :8080
//
// The full list lives in the subcommands table, which both the dispatcher
// and the usage text render from, so `domd -h` cannot lag the binary.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"domd/internal/backtest"
	"domd/internal/core"
	"domd/internal/domain"
	"domd/internal/drift"
	"domd/internal/features"
	"domd/internal/index"
	"domd/internal/ml/gbt"
	"domd/internal/modelserve"
	"domd/internal/server"
	"domd/internal/split"
	"domd/internal/statusq"
	"domd/internal/table"
	"domd/internal/wal"
)

// subcommands is the single source of truth for the CLI surface: main
// dispatches from it and usage() renders it, so the help text cannot
// drift from what the binary actually runs (scripts/check_docs.sh
// additionally checks every name here is documented in README.md).
var subcommands = []struct {
	name, blurb string
	run         func([]string)
}{
	{"query", "estimate delay of one avail at a physical date", runQuery},
	{"evaluate", "train on the historical split and print test-set quality", runEvaluate},
	{"design", "run the greedy pipeline design (Problem 2)", runDesign},
	{"train", "train one model per logical-time window and publish a version into the model registry", runTrain},
	{"serve", "train (or -load) a pipeline and serve the SMDII JSON API", runServe},
	{"backtest", "walk-forward (rolling-origin) evaluation across history", runBacktest},
	{"importances", "train (or -load) a pipeline and print the global delay drivers", runImportances},
	{"drift", "compare live feature distributions against a reference fleet", runDrift},
	{"loadgen", "drive a mixed query/ingest workload and write latency+ingest-cost benchmarks", runLoadgen},
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("domd: ")
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	for _, sc := range subcommands {
		if sc.name == cmd {
			sc.run(args)
			return
		}
	}
	usage()
}

func usage() {
	names := make([]string, len(subcommands))
	for i, sc := range subcommands {
		names[i] = sc.name
	}
	fmt.Fprintf(os.Stderr, "usage: domd <%s> [flags]\n", strings.Join(names, "|"))
	for _, sc := range subcommands {
		fmt.Fprintf(os.Stderr, "  %-11s %s\n", sc.name, sc.blurb)
	}
	os.Exit(2)
}

// commonFlags holds the flags every subcommand shares.
type commonFlags struct {
	availsPath, rccsPath string
	gap                  float64
	trials               int
	seed                 int64
	workers              int
	// loadPath reuses a pipeline saved with -save instead of retraining;
	// savePath persists the trained pipeline for later runs.
	loadPath, savePath string
}

func addCommon(fs *flag.FlagSet) *commonFlags {
	c := &commonFlags{}
	fs.StringVar(&c.availsPath, "avails", "data/avails.csv", "avail table CSV")
	fs.StringVar(&c.rccsPath, "rccs", "data/rccs.csv", "RCC table CSV")
	fs.Float64Var(&c.gap, "gap", 10, "model gap interval x (percent of planned duration)")
	fs.IntVar(&c.trials, "trials", 30, "AutoHPT trials per timeline model (0 disables tuning)")
	fs.Int64Var(&c.seed, "seed", 1, "random seed")
	fs.IntVar(&c.workers, "workers", 1, "concurrent per-timestamp model training")
	fs.StringVar(&c.loadPath, "load", "", "load a previously saved pipeline (skips training)")
	fs.StringVar(&c.savePath, "save", "", "save the trained pipeline to this path")
	return c
}

// parseFlags parses one sub-command's flags. The flag sets use
// flag.ExitOnError, so Parse only ever returns nil, but the error is
// handled anyway: silently dropping it would hide a future switch to
// ContinueOnError.
func parseFlags(fs *flag.FlagSet, args []string) {
	if err := fs.Parse(args); err != nil {
		log.Fatal(err)
	}
}

func load(c *commonFlags) ([]domain.Avail, []domain.RCC) {
	af, err := os.Open(c.availsPath)
	if err != nil {
		log.Fatal(err)
	}
	defer af.Close()
	avails, err := table.ReadAvails(af)
	if err != nil {
		log.Fatal(err)
	}
	rf, err := os.Open(c.rccsPath)
	if err != nil {
		log.Fatal(err)
	}
	defer rf.Close()
	rccs, err := table.ReadRCCs(rf)
	if err != nil {
		log.Fatal(err)
	}
	return avails, rccs
}

func buildTensor(c *commonFlags, avails []domain.Avail, rccs []domain.RCC) (*features.Extractor, *features.Tensor, split.Splits) {
	byAvail := map[int][]domain.RCC{}
	for _, r := range rccs {
		byAvail[r.AvailID] = append(byAvail[r.AvailID], r)
	}
	ext := features.NewExtractor()
	tensor, err := features.BuildTensor(ext, avails, byAvail, c.gap, index.KindAVL)
	if err != nil {
		log.Fatal(err)
	}
	sp, err := split.Make(split.DefaultConfig(), tensor.Avails)
	if err != nil {
		log.Fatal(err)
	}
	return ext, tensor, sp
}

func trainPipeline(c *commonFlags, tensor *features.Tensor, sp split.Splits) *core.Pipeline {
	if c.loadPath != "" {
		f, err := os.Open(c.loadPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		p, err := core.Load(f)
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	cfg := core.DefaultConfig()
	cfg.HPTTrials = c.trials
	cfg.Seed = c.seed
	cfg.Workers = c.workers
	p, err := core.Train(cfg, tensor, sp.Train, sp.Val)
	if err != nil {
		log.Fatal(err)
	}
	if c.savePath != "" {
		f, err := os.Create(c.savePath)
		if err != nil {
			log.Fatal(err)
		}
		if err := p.Save(f); err != nil {
			f.Close() //lint:ignore droppederr best-effort close; the Save failure is already fatal
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved pipeline to %s\n", c.savePath)
	}
	return p
}

func runQuery(args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	c := addCommon(fs)
	availID := fs.Int("avail", 0, "avail id to query")
	date := fs.String("date", "", "physical query date (YYYY-MM-DD)")
	parseFlags(fs, args)
	if *availID == 0 || *date == "" {
		log.Fatal("query requires -avail and -date")
	}
	at, err := domain.ParseDay(*date)
	if err != nil {
		log.Fatal(err)
	}
	avails, rccs := load(c)
	ext, tensor, sp := buildTensor(c, avails, rccs)
	p := trainPipeline(c, tensor, sp)
	svc := core.NewQueryService(p, ext, index.KindAVL)

	var target *domain.Avail
	for i := range avails {
		if avails[i].ID == *availID {
			target = &avails[i]
		}
	}
	if target == nil {
		log.Fatalf("avail %d not found", *availID)
	}
	var targetRCCs []domain.RCC
	for _, r := range rccs {
		if r.AvailID == *availID {
			targetRCCs = append(targetRCCs, r)
		}
	}
	res, err := svc.Query(target, targetRCCs, at)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DoMD query: avail %d at %s (t* = %.1f%% of planned duration)\n",
		res.AvailID, res.At, res.LogicalTime)
	fmt.Println("  t*(%)   raw est (days)   fused est (days)")
	for _, e := range res.Estimates {
		fmt.Printf("  %5.1f   %14.1f   %16.1f\n", e.Timestamp, e.Raw, e.Fused)
	}
	fmt.Printf("final estimated delay: %.1f days\n", res.Final())
	fmt.Println("top-5 contributing features:")
	for i, d := range res.TopDrivers {
		desc, err := features.Describe(d.Name)
		if err != nil {
			desc = d.Name
		}
		fmt.Printf("  %d. %-40s value=%.1f score=%.2f\n     %s\n", i+1, d.Name, d.Value, d.Score, desc)
	}
}

func runEvaluate(args []string) {
	fs := flag.NewFlagSet("evaluate", flag.ExitOnError)
	c := addCommon(fs)
	parseFlags(fs, args)
	avails, rccs := load(c)
	_, tensor, sp := buildTensor(c, avails, rccs)
	p := trainPipeline(c, tensor, sp)
	reports, err := p.EvaluateRows(tensor, sp.Test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test-set quality (%d avails held out):\n", len(sp.Test))
	fmt.Println("  t*(%)   MAE80   MAE90  MAE100      MSE    RMSE     R2")
	for k, r := range reports {
		fmt.Printf("  %5.1f  %6.2f  %6.2f  %6.2f  %7.1f  %6.2f  %5.2f\n",
			p.Timestamps()[k], r.MAE80, r.MAE90, r.MAE, r.MSE, r.RMSE, r.R2)
	}
}

func runDesign(args []string) {
	fs := flag.NewFlagSet("design", flag.ExitOnError)
	c := addCommon(fs)
	quick := fs.Bool("quick", false, "use reduced grids for a fast design pass")
	parseFlags(fs, args)
	avails, rccs := load(c)
	_, tensor, sp := buildTensor(c, avails, rccs)

	opts := core.DesignOptions{Seed: c.seed}
	if *quick {
		opts.Ks = []int{20, 60}
		opts.TrialGrid = []int{10, 30}
		p := gbt.DefaultParams()
		p.NumRounds = 20
		p.LearningRate = 0.25
		opts.DesignGBT = &p
	}
	rep, err := core.Design(tensor, sp.Train, sp.Val, opts)
	if err != nil {
		log.Fatal(err)
	}
	printStage := func(name string, rs []core.StageResult) {
		fmt.Printf("%s:\n", name)
		for _, r := range rs {
			if r.K > 0 {
				fmt.Printf("  %-12s k=%-3d sum val MAE = %.2f\n", r.Option, r.K, r.SumValMAE)
			} else {
				fmt.Printf("  %-12s sum val MAE = %.2f\n", r.Option, r.SumValMAE)
			}
		}
	}
	printStage("Task 2: feature selection", rep.FeatureSelection)
	printStage("Task 3: base model", rep.BaseModel)
	printStage("Task 3: stacking", rep.Stacking)
	printStage("Task 4: loss", rep.Loss)
	printStage("Task 5: HPT trials", rep.HPTTrials)
	printStage("Task 6: fusion", rep.Fusion)
	fmt.Printf("selected pipeline: selector=%s k=%d family=%s stacked=%v loss=%s trials=%d fusion=%s\n",
		rep.Final.Selector, rep.Final.K, rep.Final.Family, rep.Final.Stacked,
		rep.Final.Loss, rep.Final.HPTTrials, rep.Final.Fusion)
}

// runTrain is the training half of the model-serving lifecycle: fit one
// pipeline + conformal calibration per logical-time window, stamp the
// artifacts with content digests, and publish them as a version into the
// model registry directory that `domd serve -model-dir` serves from.
func runTrain(args []string) {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	c := addCommon(fs)
	modelDir := fs.String("model-dir", "models", "model registry directory to publish the version into")
	windows := fs.String("windows", "0-50,50-100", "comma-separated logical-time windows lo-hi (percent of planned duration); one model is trained and conformal-calibrated per window")
	version := fs.String("version", "", "version name for the published artifacts (default: content-derived v<hash12>)")
	alpha := fs.Float64("alpha", modelserve.DefaultAlpha, "default conformal miscoverage level recorded for the version (0.1 = 90% bands)")
	activate := fs.Bool("activate", true, "point the manifest's active version at the new artifacts (false: stage for a later rollout)")
	parseFlags(fs, args)
	wins, err := modelserve.ParseWindows(*windows)
	if err != nil {
		log.Fatal(err)
	}
	if *alpha <= 0 || *alpha >= 1 {
		log.Fatalf("-alpha %g outside (0,1)", *alpha)
	}
	avails, rccs := load(c)
	_, tensor, sp := buildTensor(c, avails, rccs)
	cfg := core.DefaultConfig()
	cfg.HPTTrials = c.trials
	cfg.Seed = c.seed
	cfg.Workers = c.workers
	tv, err := modelserve.TrainVersion(tensor, sp.Train, sp.Val, modelserve.TrainOptions{
		Windows: wins, Alpha: *alpha, Version: *version, Config: cfg,
	})
	if err != nil {
		log.Fatal(err)
	}
	name, err := tv.WriteTo(*modelDir, *activate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published model version %s to %s\n", name, *modelDir)
	for _, w := range tv.Windows() {
		fmt.Printf("  window %s trained on %d avails, calibrated on %d (alpha %g)\n",
			w, len(sp.Train), len(sp.Val), tv.Alpha)
	}
	if *activate {
		fmt.Printf("manifest active version: %s (running servers pick it up on POST /models/reload)\n", name)
	} else {
		fmt.Printf("version %s staged; edit %s/%s to activate\n", name, *modelDir, modelserve.ManifestName)
	}
}

func runServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	c := addCommon(fs)
	addr := fs.String("addr", ":8080", "listen address")
	readTimeout := fs.Duration("read-timeout", 10*time.Second, "max duration for reading a request")
	writeTimeout := fs.Duration("write-timeout", 30*time.Second, "max duration for writing a response")
	idleTimeout := fs.Duration("idle-timeout", 120*time.Second, "max keep-alive idle time per connection")
	shutdownTimeout := fs.Duration("shutdown-timeout", 15*time.Second, "grace period for in-flight requests on SIGINT/SIGTERM")
	fleetPar := fs.Int("fleet-parallel", server.DefaultFleetParallelism, "max avails one /fleet request queries concurrently")
	maxInFlight := fs.Int("max-inflight", server.DefaultMaxInFlight, "max concurrently handled requests before shedding with 503 (-1 disables)")
	requestTimeout := fs.Duration("request-timeout", server.DefaultRequestTimeout, "per-request handling deadline (-1s disables)")
	maxBody := fs.Int64("max-body", server.DefaultMaxBodyBytes, "max POST body size in bytes")
	walDir := fs.String("wal-dir", "", "directory for the RCC ingestion WAL (empty: POST /rccs is in-memory only)")
	fsyncPolicy := fs.String("fsync", "always", "WAL fsync policy: always, every, or never")
	fsyncEvery := fs.Int("fsync-every", 64, "records between fsyncs when -fsync=every")
	walCompactEvery := fs.Int("wal-compact-every", 1024, "ingests between WAL snapshots (0 disables auto-compaction)")
	shards := fs.Int("shards", 1, "partition the catalog into N consistent-hash shards, each with its own WAL subdirectory (requires -wal-dir; topology is pinned on first open)")
	repl := fs.Int("repl", 1, "replicate each shard's WAL across N directories, acknowledging ingests at quorum (requires -wal-dir; pinned on first open)")
	replQuorum := fs.Int("repl-quorum", 0, "replicas that must append before an ingest is acknowledged (0: majority of -repl)")
	replLagMax := fs.Int("repl-lag-max", wal.DefaultReplMaxLag, "records a replica may fall behind before it is failed out of async catch-up (revived by the next snapshot)")
	dedupCap := fs.Int("dedup-cap", statusq.DefaultDedupCap, "max idempotency keys tracked per catalog shard (negative: unbounded)")
	modelDir := fs.String("model-dir", "", "serve /predict and fleet predictions from the model registry in this directory (empty: prediction answers carry prediction_unavailable)")
	modelReload := fs.Duration("model-reload", 0, "poll the model registry and hot-swap new versions this often (0: swap only via POST /models/reload)")
	predictAlpha := fs.Float64("predict-alpha", 0, "conformal miscoverage level for served bands (0: the active model version's recorded default)")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof profiles on this address (empty: disabled; keep it loopback-only)")
	quiet := fs.Bool("quiet", false, "disable per-request trace logging")
	// -h prints the endpoint table after the flags, from the same
	// server.Endpoints table the mux registers — so help, serving, and
	// docs/OPERATIONS.md cannot drift apart.
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: domd serve [flags]\n\nflags:\n")
		fs.PrintDefaults()
		fmt.Fprintf(fs.Output(), "\n%s", server.UsageText())
	}
	parseFlags(fs, args)
	avails, rccs := load(c)
	ext, tensor, sp := buildTensor(c, avails, rccs)
	p := trainPipeline(c, tensor, sp)

	opts := server.Options{
		FleetParallelism: *fleetPar,
		MaxInFlight:      *maxInFlight,
		RequestTimeout:   *requestTimeout,
		MaxBodyBytes:     *maxBody,
	}
	if *predictAlpha < 0 || *predictAlpha >= 1 {
		log.Fatalf("-predict-alpha %g outside (0,1)", *predictAlpha)
	}
	// The model registry is optional and its failures are non-fatal: a
	// serving tier with a bad model directory still answers every read,
	// annotated prediction_unavailable, until a reload succeeds.
	var registry *modelserve.Registry
	if *modelDir != "" {
		reg, err := modelserve.Open(*modelDir)
		if err != nil {
			log.Printf("model registry %s: load failed, predictions unavailable until a reload succeeds: %v", *modelDir, err)
		} else if v := reg.ActiveVersion(); v != "" {
			log.Printf("model registry %s: serving version %s", *modelDir, v)
		} else {
			log.Printf("model registry %s: no active version yet (run `domd train`, then POST /models/reload)", *modelDir)
		}
		registry = reg
		opts.Models = reg
		opts.PredictAlpha = *predictAlpha
	}
	if *shards < 1 {
		log.Fatal("-shards must be at least 1")
	}
	if *shards > 1 && *walDir == "" {
		log.Fatal("-shards requires -wal-dir (each shard owns a WAL subdirectory)")
	}
	if *repl < 1 {
		log.Fatal("-repl must be at least 1")
	}
	if *repl > 1 && *walDir == "" {
		log.Fatal("-repl requires -wal-dir (each replica owns a WAL directory)")
	}
	if *replQuorum < 0 || *replQuorum > *repl {
		log.Fatalf("-repl-quorum %d out of range [0, %d]", *replQuorum, *repl)
	}
	var catalog server.Catalog
	var closeCatalog func() error
	if *walDir != "" {
		policy, err := wal.ParseSyncPolicy(*fsyncPolicy)
		if err != nil {
			log.Fatal(err)
		}
		dopts := statusq.DurableOptions{
			WAL:          wal.Options{Policy: policy, Every: *fsyncEvery},
			CompactEvery: *walCompactEvery,
			DedupCap:     *dedupCap,
			Replicas:     *repl,
			ReplQuorum:   *replQuorum,
			ReplMaxLag:   *replLagMax,
		}
		// Replication always routes through the sharded tier (a 1-shard
		// tier is fine): that is where the per-shard health ladder,
		// circuit breaker, and /readyz rows live.
		if *shards > 1 || *repl > 1 {
			sc, info, err := statusq.OpenSharded(*walDir, *shards, avails, rccs, index.KindAVL, dopts)
			if err != nil {
				log.Fatal(err)
			}
			tot := info.Totals()
			log.Printf("WAL restore from %s (%d shards): %d RCCs re-applied (%d duplicates, %d orphaned), %d log records",
				*walDir, sc.ShardCount(), tot.Restored, tot.Duplicates, tot.Skipped, tot.Recovery.Records)
			for _, sh := range info.Shards {
				log.Printf("  shard %d (%s): %d avails, %d restored, snapshot seq %d, %d log records",
					sh.Shard, sh.Dir, sh.Avails, sh.Info.Restored, sh.Info.Recovery.SnapshotSeq, sh.Info.Recovery.Records)
				if sh.Info.Recovery.TornTail {
					log.Printf("  shard %d: torn tail repaired at offset %d (%d bytes dropped)",
						sh.Shard, sh.Info.Recovery.TornOffset, sh.Info.Recovery.TornBytes)
				}
				if sh.Info.Repl != nil {
					for _, rp := range sh.Info.Repl.Replicas {
						switch {
						case rp.Failed:
							log.Printf("  shard %d: replica %s failed to open or repair", sh.Shard, rp.Dir)
						case rp.Rebuilt:
							log.Printf("  shard %d: replica %s rebuilt from the authoritative replica", sh.Shard, rp.Dir)
						case rp.CaughtUp > 0:
							log.Printf("  shard %d: replica %s caught up %d records", sh.Shard, rp.Dir, rp.CaughtUp)
						}
					}
				}
			}
			catalog = sc // server.New wires sc as the Ingester too
			closeCatalog = sc.Close
		} else {
			dc, info, err := statusq.OpenDurable(*walDir, avails, rccs, index.KindAVL, dopts)
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("WAL restore from %s: %d RCCs re-applied (%d duplicates, %d orphaned), snapshot seq %d, %d log records",
				*walDir, info.Restored, info.Duplicates, info.Skipped, info.Recovery.SnapshotSeq, info.Recovery.Records)
			if info.Recovery.TornTail {
				log.Printf("WAL restore: torn tail repaired at offset %d (%d bytes dropped)",
					info.Recovery.TornOffset, info.Recovery.TornBytes)
			}
			catalog = dc.Catalog
			opts.Ingester = dc
			closeCatalog = dc.Close
		}
	} else {
		cat, err := statusq.NewCatalog(avails, rccs, index.KindAVL)
		if err != nil {
			log.Fatal(err)
		}
		catalog = cat
	}
	if !*quiet {
		opts.Logger = log.New(os.Stderr, "domd: ", log.LstdFlags)
	}
	// Profiling is opt-in and served on its own listener so the public
	// address never exposes pprof. The explicit mux registers exactly the
	// pprof handlers rather than inheriting http.DefaultServeMux.
	if *pprofAddr != "" {
		pm := http.NewServeMux()
		pm.HandleFunc("/debug/pprof/", pprof.Index)
		pm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv := &http.Server{Addr: *pprofAddr, Handler: pm}
		pprofErr := make(chan error, 1)
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			pprofErr <- pprofSrv.ListenAndServe()
		}()
		defer func() {
			if err := pprofSrv.Close(); err != nil {
				log.Printf("pprof close: %v", err)
			}
			if err := <-pprofErr; err != nil && err != http.ErrServerClosed {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(p, ext, catalog, opts),
		ReadTimeout:       *readTimeout,
		ReadHeaderTimeout: *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
	}

	// Graceful shutdown: first SIGINT/SIGTERM stops accepting and drains
	// in-flight requests for up to -shutdown-timeout, then force-closes.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Auto-reload: poll the registry manifest and hot-swap new versions
	// without an operator POST. Exits with the serve context.
	if registry != nil && *modelReload > 0 {
		go func() {
			t := time.NewTicker(*modelReload)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if rep, err := registry.Reload(); err != nil {
						log.Printf("model auto-reload: %v", err)
					} else if rep.Swapped {
						log.Printf("model auto-reload: now serving version %s", rep.Active)
					}
				}
			}
		}()
	}
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		stop() // restore default signal handling: a second signal kills immediately
		log.Print("signal received; draining in-flight requests")
		sctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		done <- srv.Shutdown(sctx)
	}()

	fmt.Printf("serving DoMD API on %s (avails: %d, ongoing: %d, fleet parallelism: %d)\n",
		*addr, len(catalog.AvailIDs()), len(catalog.OngoingIDs()), *fleetPar)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	if err := <-done; err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	if closeCatalog != nil {
		if err := closeCatalog(); err != nil {
			log.Fatalf("close WAL: %v", err)
		}
	}
	log.Print("server stopped cleanly")
}

func runBacktest(args []string) {
	fs := flag.NewFlagSet("backtest", flag.ExitOnError)
	c := addCommon(fs)
	folds := fs.Int("folds", 3, "number of walk-forward test blocks")
	minTrain := fs.Int("min-train", 30, "minimum training avails before the first cutoff")
	parseFlags(fs, args)
	avails, rccs := load(c)
	_, tensor, _ := buildTensor(c, avails, rccs)

	pipeCfg := core.DefaultConfig()
	pipeCfg.HPTTrials = c.trials
	pipeCfg.Seed = c.seed
	pipeCfg.Workers = c.workers
	btCfg := backtest.DefaultConfig()
	btCfg.Folds = *folds
	btCfg.MinTrain = *minTrain
	btCfg.Seed = c.seed

	results, err := backtest.Run(btCfg, pipeCfg, tensor)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("walk-forward backtest:")
	for i, f := range results {
		last := f.Reports[len(f.Reports)-1]
		fmt.Printf("  fold %d: cutoff %s  train %3d  test %3d  @100%%: MAE80 %.1f MAE %.1f R2 %.2f\n",
			i+1, f.Cutoff, f.NumTrain, f.NumTest, last.MAE80, last.MAE, last.R2)
	}
	sum, err := backtest.Summarize(results)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overall (all folds × timestamps): MAE80 %.1f  MAE %.1f  R2 %.2f\n", sum.MAE80, sum.MAE, sum.R2)
}

func runImportances(args []string) {
	fs := flag.NewFlagSet("importances", flag.ExitOnError)
	c := addCommon(fs)
	topN := fs.Int("top", 15, "number of features to print")
	parseFlags(fs, args)
	avails, rccs := load(c)
	_, tensor, sp := buildTensor(c, avails, rccs)
	p := trainPipeline(c, tensor, sp)

	imp := p.GlobalImportances()
	type row struct {
		name  string
		share float64
	}
	rows := make([]row, 0, len(imp))
	for name, share := range imp {
		rows = append(rows, row{name, share})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].share > rows[j].share })
	if *topN > len(rows) {
		*topN = len(rows)
	}
	fmt.Printf("global delay drivers (share of total model gain, top %d):\n", *topN)
	for _, r := range rows[:*topN] {
		desc, err := features.Describe(r.name)
		if err != nil {
			desc = r.name
		}
		fmt.Printf("  %5.1f%%  %-40s %s\n", r.share*100, r.name, desc)
	}
}

func runDrift(args []string) {
	fs := flag.NewFlagSet("drift", flag.ExitOnError)
	c := addCommon(fs)
	liveAvails := fs.String("live-avails", "", "live avail table CSV")
	liveRCCs := fs.String("live-rccs", "", "live RCC table CSV")
	tstar := fs.Float64("tstar", 50, "logical time at which to compare feature distributions")
	topN := fs.Int("top", 10, "number of drifting features to print")
	parseFlags(fs, args)
	if *liveAvails == "" || *liveRCCs == "" {
		log.Fatal("drift requires -live-avails and -live-rccs")
	}

	ext := features.NewExtractor()
	matrix := func(availsPath, rccsPath string) [][]float64 {
		cc := *c
		cc.availsPath, cc.rccsPath = availsPath, rccsPath
		avails, rccs := load(&cc)
		byAvail := map[int][]domain.RCC{}
		for _, r := range rccs {
			byAvail[r.AvailID] = append(byAvail[r.AvailID], r)
		}
		var X [][]float64
		for i := range avails {
			a := &avails[i]
			eng, err := statusq.NewEngine(a, byAvail[a.ID], index.KindAVL)
			if err != nil {
				log.Fatal(err)
			}
			vec, err := ext.Vector(eng, *tstar)
			if err != nil {
				log.Fatal(err)
			}
			X = append(X, vec)
		}
		return X
	}

	det, err := drift.NewDetector(drift.Config{}, matrix(c.availsPath, c.rccsPath), ext.Names())
	if err != nil {
		log.Fatal(err)
	}
	reports, err := det.Check(matrix(*liveAvails, *liveRCCs))
	if err != nil {
		log.Fatal(err)
	}
	severe := 0
	for _, r := range reports {
		if r.Severity == drift.Severe {
			severe++
		}
	}
	fmt.Printf("feature drift at t*=%.0f%%: %d severe of %d features\n", *tstar, severe, len(reports))
	if *topN > len(reports) {
		*topN = len(reports)
	}
	for _, r := range reports[:*topN] {
		fmt.Printf("  PSI %5.2f (excess %5.2f, %-8s) %s\n", r.PSI, r.Excess, r.Severity, r.Name)
	}
}
