// Command domdlint runs the project's invariant analyzers (package
// internal/lint) over the given package patterns and reports findings.
//
// Usage:
//
//	domdlint [-json] [-fix] [-analyzers a,b] [patterns ...]
//
// Patterns are package directories or "dir/..." trees (default "./...").
// Exit status: 0 clean, 1 findings reported, 2 load/usage failure. Every
// finding names the analyzer; suppress a deliberate violation with a
// `//lint:ignore <analyzer> <reason>` comment on or directly above the
// flagged line. -fix emits a ready-to-paste suppression line per finding
// (in JSON output, the "suppression" field) so triaging an intentional
// violation is copy-paste; it does not rewrite files.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"domd/internal/lint"
)

type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	// Suppression, under -fix, is the //lint:ignore line to paste above
	// the finding, prefixed with its destination file:line.
	Suppression string `json:"suppression,omitempty"`
}

// suppressionFor renders the paste-ready ignore directive for a finding.
// Findings anchored outside Go sources (metriccatalog's stale doc rows)
// have no line to carry a directive, so they get no suggestion.
func suppressionFor(d lint.Diagnostic) string {
	if !strings.HasSuffix(d.Pos.Filename, ".go") {
		return ""
	}
	return fmt.Sprintf("%s:%d: //lint:ignore %s TODO(justify): why this violation is intentional",
		d.Pos.Filename, d.Pos.Line, d.Analyzer)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("domdlint: ")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	fix := flag.Bool("fix", false, "emit a ready-to-paste //lint:ignore suppression per finding")
	names := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := lint.ByName(*names)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(patterns...)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}
	loadOK := true
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			// Type errors starve the analyzers of information, so they are
			// a hard failure, not a lint finding.
			log.Printf("%s: type error: %v", pkg.PkgPath, terr)
			loadOK = false
		}
	}
	if !loadOK {
		os.Exit(2)
	}

	diags := lint.Run(pkgs, analyzers)
	if *jsonOut {
		out := make([]jsonDiag, 0, len(diags)) // non-nil: a clean tree encodes []
		for _, d := range diags {
			jd := jsonDiag{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Message:  d.Message,
			}
			if *fix {
				jd.Suppression = suppressionFor(d)
			}
			out = append(out, jd)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Print(err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: [%s] %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
			if *fix {
				if s := suppressionFor(d); s != "" {
					fmt.Printf("\tsuppress with: %s\n", s)
				}
			}
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
