GO ?= go

.PHONY: build vet test race check bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector — the gate for the
# parallel tensor-build path.
race:
	$(GO) test -race ./...

# check is the CI gate: compile, vet, race-test everything.
check:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem .
