GO ?= go

# stress knobs: repeat the concurrent-serving stress suite STRESS_COUNT
# times (raise to shake out rare interleavings) within STRESS_TIMEOUT.
STRESS_COUNT ?= 3
STRESS_TIMEOUT ?= 10m

.PHONY: build vet test race stress lint check bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector — the gate for the
# parallel tensor-build path.
race:
	$(GO) test -race ./...

# stress repeats the concurrent-serving suite (parallel /query + /fleet +
# AddRCC over httptest, plus the catalog and index concurrency gates) under
# the race detector.
stress:
	$(GO) test -race -count $(STRESS_COUNT) -timeout $(STRESS_TIMEOUT) \
		-run 'Concurrent|SingleFlight|CachedEngine' \
		./internal/server/ ./internal/statusq/ ./internal/index/

# lint runs domdlint, the project's invariant analyzers (internal/lint):
# lockguard, detrange, floateq, walltime, droppederr, ctxflow. Non-zero
# exit on any finding; suppress a deliberate violation with
# `//lint:ignore <analyzer> <reason>` (see DESIGN.md "Enforced
# invariants").
lint:
	$(GO) run ./cmd/domdlint ./...

# check is the CI gate: compile, vet, race-test everything, repeat the
# concurrency stress suite, then enforce the lint invariants (domdlint
# must exit 0 on the tree).
check:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test -race ./... && $(MAKE) stress && $(MAKE) lint

bench:
	$(GO) test -run '^$$' -bench . -benchmem .
