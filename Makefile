GO ?= go

# stress knobs: repeat the concurrent-serving stress suite STRESS_COUNT
# times (raise to shake out rare interleavings) within STRESS_TIMEOUT.
STRESS_COUNT ?= 3
STRESS_TIMEOUT ?= 10m

.PHONY: build vet test race stress chaos chaos-repl lint docs differential check bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector — the gate for the
# parallel tensor-build path.
race:
	$(GO) test -race ./...

# stress repeats the concurrent-serving suite (parallel /query + /fleet +
# AddRCC over httptest, the /predict-under-hot-swap gate
# TestConcurrentPredictHotSwap, plus the catalog and index concurrency
# gates) under the race detector.
stress:
	$(GO) test -race -count $(STRESS_COUNT) -timeout $(STRESS_TIMEOUT) \
		-run 'Concurrent|SingleFlight|CachedEngine' \
		./internal/server/ ./internal/statusq/ ./internal/index/

# chaos runs the fault-injection and crash-recovery suites under the race
# detector: WAL torn-tail/replay recovery, kill-mid-ingest restart proofs
# (single-catalog and per-shard against the 4-shard router), injected
# disk and engine-build faults with cross-shard error isolation, load
# shedding, and panic recovery (see DESIGN.md "Durability & fault
# model").
chaos:
	$(GO) test -race -timeout $(STRESS_TIMEOUT) \
		-run 'Chaos|Fault|Torn|Recovery|Durable|Injected|Fire|Arm|Enable|Reset' \
		./internal/wal/ ./internal/statusq/ ./internal/server/ ./internal/faultinject/

# chaos-repl runs the replication-specific chaos suite under the race
# detector: quorum append/ack ordering, follower faults with bounded
# catch-up, quorum-loss refusal (no ack ever escapes), primary failover
# replayed through the dedup index, reopen repair of torn, diverged, and
# lost replica tails, kill-primary-mid-WAL crash recovery at the sharded
# tier, the health-ladder/breaker path at the HTTP tier (all replicas
# down serves stale while /readyz reports failed), and the
# replicated-vs-serial differential (see docs/OPERATIONS.md
# "Replication").
chaos-repl:
	$(GO) test -race -timeout $(STRESS_TIMEOUT) \
		-run 'ChaosRepl|Replicated|Rewind|Quorum' \
		./internal/wal/ ./internal/statusq/ ./internal/server/

# lint runs domdlint, the project's invariant analyzers (internal/lint):
# the per-function checks (lockguard, detrange, floateq, walltime,
# droppederr, ctxflow, docstring) plus the interprocedural call-graph
# analyzers (lockorder, goleak, ackorder, metriccatalog). Non-zero exit
# on any finding; suppress a deliberate violation with
# `//lint:ignore <analyzer> <reason>` (see DESIGN.md "Enforced
# invariants").
lint:
	$(GO) run ./cmd/domdlint ./...

# docs keeps the operator documentation honest: the docstring analyzer
# enforces godoc-convention comments on the operator-facing packages, the
# metriccatalog analyzer enforces bidirectional agreement between obs
# metric registrations and docs/OPERATIONS.md (file:line findings in both
# directions), and scripts/check_docs.sh cross-checks the served
# endpoints, serve flags, and failpoints — so documentation rot fails
# the build.
docs:
	$(GO) run ./cmd/domdlint -analyzers docstring,metriccatalog ./...
	sh scripts/check_docs.sh

# differential re-runs the incremental-maintenance equivalence suite
# under the race detector: random RCC streams applied via the O(delta)
# path must stay bitwise-identical (math.Float64bits) to engines rebuilt
# from scratch, at the engine, catalog+WAL-replay, sweep, and
# stat-structure layers — including the 4-shard router
# (TestDeltaShardedEquivalence), whose answers must match a single
# catalog fed the same stream.
differential:
	$(GO) test -race -count 1 -run 'TestDelta' ./internal/statusq/

# check is the CI gate: compile, vet, race-test everything, repeat the
# concurrency stress suite, re-run the chaos (fault-injection) suite and
# the delta-vs-rebuild differential suite, then enforce the lint
# invariants (domdlint must exit 0 on the tree) and the docs
# cross-checks.
check:
	$(GO) build ./... && $(GO) vet ./... && $(GO) test -race ./... && $(MAKE) stress && $(MAKE) chaos && $(MAKE) chaos-repl && $(MAKE) differential && $(MAKE) lint && $(MAKE) docs

# bench runs the Go micro-benchmarks (including the statusq
# ApplyRCC-vs-rebuild pair backing DESIGN.md §4.3), then the loadgen
# harness, which rewrites BENCH_6.json from a live served workload, the
# shard-scaling scenario, which rewrites BENCH_7.json from a
# fsync-per-ack sweep of 1..8 shards (powers of two), and the
# prediction-serving scenario, which rewrites BENCH_10.json from a
# /predict-heavy workload under rolling model hot-swaps.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .
	$(GO) test -run '^$$' -bench 'ApplyRCC|RebuildAfterIngest' -benchmem ./internal/statusq/
	$(GO) run ./cmd/domd loadgen -duration 5s -serve-rccs 1500 -micro-iters 300 -out BENCH_6.json
	$(GO) run ./cmd/domd loadgen -scenario shards -shards 8 -duration 3s -out BENCH_7.json
	$(GO) run ./cmd/domd loadgen -scenario predict -duration 5s -serve-rccs 1500 -out BENCH_10.json
